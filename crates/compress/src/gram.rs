//! Pass 1: streaming accumulation of the Gram matrix `C = XᵀX`.
//!
//! This is Fig. 2 of the paper verbatim — read one row at a time, add the
//! outer product of the row with itself into an `M × M` accumulator held
//! in memory — plus a row-partitioned parallel variant: `C` is a sum over
//! rows, so each worker accumulates a private partial `C` over a disjoint
//! row range and the partials are added at the end (the same reduction
//! trick as the paper's single-pass claim, just spread over cores).
//!
//! Only the upper triangle is accumulated (C is symmetric), halving the
//! inner-loop work relative to the paper's pseudocode.

use ats_common::{AtsError, Result};
use ats_linalg::{vecops, Matrix};
use ats_storage::RowSource;

/// Accumulate one row's outer product into the upper triangle of `c`.
/// The inner sweep is a widened axpy over the row tail `row[j..]` — same
/// per-element op (`c += x_j · x_l`) in the same ascending-`l` order, so
/// the accumulated Gram matrix is bitwise unchanged.
#[inline]
fn accumulate_row(c: &mut Matrix, row: &[f64]) {
    let m = row.len();
    for j in 0..m {
        let xj = row[j];
        if xj == 0.0 {
            continue; // sparse customer-days are common in phone data
        }
        let c_row = c.row_mut(j);
        vecops::axpy(xj, &row[j..], &mut c_row[j..]);
    }
}

/// Mirror the accumulated upper triangle into the lower.
fn symmetrize(c: &mut Matrix) {
    let m = c.rows();
    for j in 0..m {
        for l in (j + 1)..m {
            c[(l, j)] = c[(j, l)];
        }
    }
}

/// Single-threaded pass 1 (Fig. 2): one sequential scan, `O(N·M²)` work,
/// `O(M²)` memory.
pub fn compute_gram(source: &dyn RowSource) -> Result<Matrix> {
    let m = source.cols();
    let mut c = Matrix::zeros(m, m);
    source.for_each_row(&mut |_, row| {
        accumulate_row(&mut c, row);
        Ok(())
    })?;
    symmetrize(&mut c);
    Ok(c)
}

/// Multi-threaded pass 1: `threads` workers each scan a contiguous row
/// range into a private partial Gram matrix; partials are summed.
///
/// Falls back to the serial path for `threads ≤ 1` or tiny inputs.
pub fn compute_gram_parallel<S: RowSource + ?Sized>(source: &S, threads: usize) -> Result<Matrix> {
    let n = source.rows();
    let m = source.cols();
    if threads <= 1 || n < 2 * threads {
        return compute_gram_dyn(source);
    }
    let chunk = n.div_ceil(threads);
    let partials: Vec<Result<Matrix>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                continue;
            }
            handles.push(scope.spawn(move |_| -> Result<Matrix> {
                let mut c = Matrix::zeros(m, m);
                source.scan_range(start, end, &mut |_, row| {
                    accumulate_row(&mut c, row);
                    Ok(())
                })?;
                Ok(c)
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(AtsError::internal("gram worker thread panicked")),
            })
            .collect()
    })
    .map_err(|_| AtsError::internal("gram thread scope panicked"))?;

    let mut total = Matrix::zeros(m, m);
    for p in partials {
        let p = p?;
        for (acc, v) in total.as_mut_slice().iter_mut().zip(p.as_slice()) {
            *acc += v;
        }
    }
    symmetrize(&mut total);
    Ok(total)
}

fn compute_gram_dyn<S: RowSource + ?Sized>(source: &S) -> Result<Matrix> {
    let m = source.cols();
    let mut c = Matrix::zeros(m, m);
    source.scan_range(0, source.rows(), &mut |_, row| {
        accumulate_row(&mut c, row);
        Ok(())
    })?;
    symmetrize(&mut c);
    Ok(c)
}

/// Row-block granule of the sharded pass 1: partial Gram matrices are
/// accumulated over fixed 32-row blocks and folded in global block
/// order, so the result is bit-identical for *any* block-aligned row
/// partition (see [`shard_ranges`]) at any thread count.
pub const GRAM_BLOCK_ROWS: usize = 32;

/// Split `n` rows into at most `r` contiguous shards whose boundaries
/// fall on [`GRAM_BLOCK_ROWS`] multiples (except the final row), so the
/// fixed-block pass-1 fold sees the same block sequence regardless of
/// how many shards the rows are grouped into.
///
/// Returns fewer than `r` shards when `n` is too small to give every
/// shard at least one block; never returns an empty shard. `n = 0`
/// yields no shards.
pub fn shard_ranges(n: usize, r: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let blocks = n.div_ceil(GRAM_BLOCK_ROWS);
    let r = r.clamp(1, blocks);
    let mut ranges = Vec::with_capacity(r);
    for t in 0..r {
        let start_block = t * blocks / r;
        let end_block = (t + 1) * blocks / r;
        let start = start_block * GRAM_BLOCK_ROWS;
        let end = (end_block * GRAM_BLOCK_ROWS).min(n);
        ranges.push((start, end));
    }
    ranges
}

/// Sharded pass 1: accumulate one mergeable Gram partial per fixed
/// 32-row block of each shard and fold the partials into a single
/// accumulator in global block order.
///
/// Because every block partial is built row-by-row from zero and the
/// fold visits blocks in ascending row order — iterating `ranges` in
/// order, never pre-folding per shard — the result is **bit-identical**
/// across any block-aligned shard partition (including one shard) and
/// any `threads` value: parallelism only computes partials of the next
/// `threads` blocks concurrently ("waves"), the fold itself stays
/// sequential in block order.
pub fn compute_gram_sharded<S: RowSource + ?Sized>(
    source: &S,
    ranges: &[(usize, usize)],
    threads: usize,
) -> Result<Matrix> {
    let n = source.rows();
    let m = source.cols();
    let mut blocks: Vec<(usize, usize)> = Vec::new();
    let mut expected_start = 0usize;
    for &(start, end) in ranges {
        if start != expected_start || end <= start || end > n {
            return Err(AtsError::InvalidArgument(format!(
                "shard range {start}..{end} is not contiguous within 0..{n}"
            )));
        }
        expected_start = end;
        let mut b = start;
        while b < end {
            let be = (b + GRAM_BLOCK_ROWS).min(end);
            blocks.push((b, be));
            b = be;
        }
    }
    if expected_start != n {
        return Err(AtsError::InvalidArgument(format!(
            "shard ranges cover 0..{expected_start} of {n} rows"
        )));
    }

    let block_partial = |&(start, end): &(usize, usize)| -> Result<Matrix> {
        let mut c = Matrix::zeros(m, m);
        source.scan_range(start, end, &mut |_, row| {
            accumulate_row(&mut c, row);
            Ok(())
        })?;
        Ok(c)
    };
    let fold = |total: &mut Matrix, partial: &Matrix| {
        for (acc, v) in total.as_mut_slice().iter_mut().zip(partial.as_slice()) {
            *acc += v;
        }
    };

    let mut total = Matrix::zeros(m, m);
    if threads <= 1 || blocks.len() < 2 {
        for b in &blocks {
            let p = block_partial(b)?;
            fold(&mut total, &p);
        }
    } else {
        // Wave parallelism: compute up to `threads` block partials
        // concurrently, then fold the wave in block order before moving
        // on — the fold sequence is exactly the serial one.
        for wave in blocks.chunks(threads) {
            let partials: Vec<Result<Matrix>> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|b| scope.spawn(move |_| block_partial(b)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        Err(_) => Err(AtsError::internal("gram block worker panicked")),
                    })
                    .collect()
            })
            .map_err(|_| AtsError::internal("gram thread scope panicked"))?;
            for p in partials {
                fold(&mut total, &p?);
            }
        }
    }
    symmetrize(&mut total);
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_matrix(n: usize, m: usize, seed: u64) -> Matrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, m, |_, _| rng.gen_range(-4.0..4.0))
    }

    #[test]
    fn matches_in_memory_gram() {
        let x = random_matrix(50, 8, 1);
        let c = compute_gram(&x).unwrap();
        assert!(c.approx_eq(&x.gram(), 1e-9));
    }

    #[test]
    fn parallel_matches_serial() {
        let x = random_matrix(203, 11, 2); // odd N to exercise ragged chunks
        let serial = compute_gram(&x).unwrap();
        for threads in [2, 3, 8] {
            let par = compute_gram_parallel(&x, threads).unwrap();
            assert!(
                par.approx_eq(&serial, 1e-8),
                "threads={threads} diverged by {}",
                par.sub(&serial).unwrap().max_abs()
            );
        }
    }

    #[test]
    fn parallel_falls_back_on_tiny_input() {
        let x = random_matrix(3, 4, 3);
        let par = compute_gram_parallel(&x, 8).unwrap();
        assert!(par.approx_eq(&x.gram(), 1e-10));
    }

    #[test]
    fn gram_of_zero_matrix_is_zero() {
        let x = Matrix::zeros(10, 5);
        let c = compute_gram(&x).unwrap();
        assert_eq!(c.frobenius_norm(), 0.0);
    }

    #[test]
    fn works_against_disk_source() {
        let dir = ats_common::TestDir::new("ats-gram");
        let path = dir.file("gram.atsm");
        let x = random_matrix(300, 6, 4);
        ats_storage::file::write_matrix(&path, &x).unwrap();
        let f = ats_storage::MatrixFile::open(&path).unwrap();
        let c = compute_gram_parallel(&f, 4).unwrap();
        assert!(c.approx_eq(&x.gram(), 1e-8));
    }

    #[test]
    fn shard_ranges_are_block_aligned_and_cover() {
        for (n, r) in [
            (1usize, 4usize),
            (31, 4),
            (32, 4),
            (100, 1),
            (100, 4),
            (1000, 7),
            (64, 64),
        ] {
            let ranges = shard_ranges(n, r);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= r);
            assert_eq!(ranges.first().unwrap().0, 0);
            assert_eq!(ranges.last().unwrap().1, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "gap in {ranges:?}");
            }
            for &(start, end) in &ranges {
                assert!(end > start, "empty shard in {ranges:?}");
                assert_eq!(start % GRAM_BLOCK_ROWS, 0, "unaligned start in {ranges:?}");
            }
        }
        assert!(shard_ranges(0, 4).is_empty());
    }

    #[test]
    fn sharded_gram_is_bit_identical_across_partitions_and_threads() {
        let x = random_matrix(203, 11, 6);
        let reference = compute_gram_sharded(&x, &shard_ranges(203, 1), 1).unwrap();
        assert!(reference.approx_eq(&x.gram(), 1e-8));
        for r in [1, 2, 4, 7] {
            for threads in [1, 2, 3, 8] {
                let got = compute_gram_sharded(&x, &shard_ranges(203, r), threads).unwrap();
                assert_eq!(
                    got.as_slice(),
                    reference.as_slice(),
                    "shards={r} threads={threads} not bit-identical"
                );
            }
        }
    }

    #[test]
    fn sharded_gram_rejects_bad_ranges() {
        let x = random_matrix(64, 4, 7);
        assert!(compute_gram_sharded(&x, &[(0, 32), (40, 64)], 1).is_err());
        assert!(compute_gram_sharded(&x, &[(0, 32)], 1).is_err());
        assert!(compute_gram_sharded(&x, &[(0, 32), (32, 80)], 1).is_err());
    }

    #[test]
    fn single_pass_io() {
        // The whole point of Fig. 2: exactly one sequential pass.
        let dir = ats_common::TestDir::new("ats-gram1p");
        let path = dir.file("onepass.atsm");
        let x = random_matrix(100, 5, 5);
        ats_storage::file::write_matrix(&path, &x).unwrap();
        let f = ats_storage::MatrixFile::open(&path).unwrap();
        compute_gram(&f).unwrap();
        assert_eq!(f.stats().logical_reads(), 100, "each row read exactly once");
    }
}
