//! Plain SVD compression (§3.4, §4.1): the two-pass out-of-core build
//! and the `O(k)`-per-cell reconstruction.
//!
//! - **Pass 1** computes the `M × M` Gram matrix `C = XᵀX` ([`crate::gram`],
//!   Fig. 2) and eigendecomposes it in memory (Lemma 3.2), yielding the
//!   eigenvalues `λᵢ²` and the right singular vectors `V`.
//! - **Pass 2** streams the rows again and emits each row of
//!   `U = X V Λ⁻¹` (Eq. 11, Fig. 3), truncated to `k` columns.
//!
//! The compressed form keeps `U` (`N × k`), the `k` singular values, and
//! `V` (`M × k`) — Eq. 9's `N·k + k + k·M` numbers.

use crate::gram::{compute_gram_parallel, compute_gram_sharded};
use crate::method::{svd_bytes, CompressedMatrix, SpaceBudget};
use ats_common::{AtsError, Result};
use ats_linalg::kernels::{self, VPanel};
use ats_linalg::vecops;
use ats_linalg::{lanczos_top_k, sym_eigen, LanczosOptions, Matrix};
use ats_storage::RowSource;

/// Which solver handles pass 1's `M × M` eigenproblem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EigenEngine {
    /// Dense Householder + QL: all `M` pairs, `O(M³)`. Default.
    #[default]
    Dense,
    /// Lanczos with full reorthogonalization: only the top `k` pairs,
    /// `O(M²·iters)` — wins when `k ≪ M` (see the `eigen` ablation).
    Lanczos,
}

/// A matrix compressed by truncated SVD.
#[derive(Debug, Clone)]
pub struct SvdCompressed {
    /// `N × k` left singular vectors ("customer-to-pattern").
    u: Matrix,
    /// `k` singular values, descending (the paper's λ).
    lambda: Vec<f64>,
    /// `M × k` right singular vectors ("day-to-pattern").
    v: Matrix,
    /// `Vᵀ` as a `k × M` component panel — a serving-time mirror of `v`
    /// feeding the blocked reconstruction kernels. Derived (rebuilt on
    /// construction and truncation), so it does not count toward
    /// [`CompressedMatrix::storage_bytes`]: on disk only `V` is stored.
    vt: VPanel,
}

impl SvdCompressed {
    /// Two-pass compression keeping `k` principal components.
    ///
    /// `threads` parallelizes both passes: pass 1 sums per-worker partial
    /// Gram matrices, pass 2 splits the rows of `U` into disjoint bands
    /// written concurrently. `k` is clamped to the numerical rank
    /// discovered in pass 1.
    pub fn compress<S: RowSource + ?Sized>(source: &S, k: usize, threads: usize) -> Result<Self> {
        Self::compress_with_engine(source, k, threads, EigenEngine::Dense)
    }

    /// [`SvdCompressed::compress`] with an explicit pass-1 eigensolver.
    pub fn compress_with_engine<S: RowSource + ?Sized>(
        source: &S,
        k: usize,
        threads: usize,
        engine: EigenEngine,
    ) -> Result<Self> {
        let (_, m) = (source.rows(), source.cols());
        if k == 0 {
            return Err(AtsError::Budget(
                "SVD with k = 0 components stores nothing".into(),
            ));
        }
        // Pass 1: Gram + eigendecomposition.
        let c = compute_gram_parallel(source, threads)?;
        let eig = match engine {
            EigenEngine::Dense => sym_eigen(&c)?,
            EigenEngine::Lanczos => lanczos_top_k(&c, k.min(m), LanczosOptions::default())?,
        };
        Self::from_eigen(source, k, threads, eig)
    }

    /// Sharded two-pass build: identical to [`SvdCompressed::compress`]
    /// except pass 1 accumulates one mergeable Gram partial per fixed
    /// 32-row block of each shard and folds them in global block order
    /// ([`compute_gram_sharded`]), so the factors — and hence the whole
    /// compressed form — are **bit-identical** across any block-aligned
    /// shard partition and any thread count.
    pub fn compress_sharded<S: RowSource + ?Sized>(
        source: &S,
        k: usize,
        threads: usize,
        ranges: &[(usize, usize)],
    ) -> Result<Self> {
        if k == 0 {
            return Err(AtsError::Budget(
                "SVD with k = 0 components stores nothing".into(),
            ));
        }
        let c = compute_gram_sharded(source, ranges, threads)?;
        let eig = sym_eigen(&c)?;
        Self::from_eigen(source, k, threads, eig)
    }

    /// Sharded variant of [`SvdCompressed::compress_budget`].
    pub fn compress_budget_sharded<S: RowSource + ?Sized>(
        source: &S,
        budget: SpaceBudget,
        threads: usize,
        ranges: &[(usize, usize)],
    ) -> Result<Self> {
        let k = budget.max_svd_k(source.rows(), source.cols());
        if k == 0 {
            return Err(AtsError::Budget(format!(
                "budget {:.3}% cannot hold even one principal component",
                budget.fraction * 100.0
            )));
        }
        Self::compress_sharded(source, k, threads, ranges)
    }

    /// Shared epilogue of every build: rank-clamp `k`, truncate the
    /// factors, and run pass 2 (`U = X V Λ⁻¹`, Fig. 3).
    fn from_eigen<S: RowSource + ?Sized>(
        source: &S,
        k: usize,
        threads: usize,
        eig: ats_linalg::EigenDecomposition,
    ) -> Result<Self> {
        let (n, m) = (source.rows(), source.cols());
        let lambda_all: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let lmax = lambda_all.first().copied().unwrap_or(0.0);
        // Eigenvalues of XᵀX carry squared error, so the numerical-rank
        // cutoff on singular values is ~sqrt(machine noise) relative.
        let rank = lambda_all
            .iter()
            .take_while(|&&s| s > 1e-6 * lmax.max(1e-300))
            .count();
        let k = k.min(rank.max(1)).min(m);
        let lambda = lambda_all[..k].to_vec();

        let mut v = Matrix::zeros(m, k);
        for j in 0..k {
            for i in 0..m {
                v[(i, j)] = eig.vectors[(i, j)];
            }
        }

        // Pass 2: U = X V Λ⁻¹, one row at a time (Fig. 3).
        let mut u = Matrix::zeros(n, k);
        emit_u(source, &v, &lambda, &mut u, threads)?;

        let vt = VPanel::from_v(&v);
        Ok(SvdCompressed { u, lambda, v, vt })
    }

    /// Compress to fit a space budget: picks the largest `k` allowed by
    /// Eq. 9 for this budget.
    pub fn compress_budget<S: RowSource + ?Sized>(
        source: &S,
        budget: SpaceBudget,
        threads: usize,
    ) -> Result<Self> {
        let k = budget.max_svd_k(source.rows(), source.cols());
        if k == 0 {
            return Err(AtsError::Budget(format!(
                "budget {:.3}% cannot hold even one principal component",
                budget.fraction * 100.0
            )));
        }
        Self::compress(source, k, threads)
    }

    /// Assemble from already-computed parts (used by the SVDD builder,
    /// whose pass 3 produces `U` itself).
    pub(crate) fn from_parts(u: Matrix, lambda: Vec<f64>, v: Matrix) -> Self {
        debug_assert_eq!(u.cols(), lambda.len());
        debug_assert_eq!(v.cols(), lambda.len());
        let vt = VPanel::from_v(&v);
        SvdCompressed { u, lambda, v, vt }
    }

    /// Number of retained principal components.
    pub fn k(&self) -> usize {
        self.lambda.len()
    }

    /// The retained singular values.
    pub fn lambda(&self) -> &[f64] {
        &self.lambda
    }

    /// The `N × k` U matrix.
    pub fn u(&self) -> &Matrix {
        &self.u
    }

    /// The `M × k` V matrix.
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Reconstruct row `i` given an externally supplied row of `U` —
    /// used by `ats-core` when `U` lives on disk and was just fetched.
    /// Routed through the `Vᵀ` panel kernel: `k` sequential axpy sweeps,
    /// no allocation, bitwise identical to the scalar path.
    pub fn reconstruct_row_from_u(&self, u_row: &[f64], out: &mut [f64]) {
        kernels::reconstruct_row(u_row, &self.lambda, &self.vt, out);
    }

    /// Truncate in place to `k` components (used by SVDD's `k_opt`
    /// search; cheap).
    pub fn truncate(&mut self, k: usize) {
        let k = k.min(self.k());
        self.lambda.truncate(k);
        let mut u = Matrix::zeros(self.u.rows(), k);
        for i in 0..self.u.rows() {
            u.row_mut(i).copy_from_slice(&self.u.row(i)[..k]);
        }
        let mut v = Matrix::zeros(self.v.rows(), k);
        for i in 0..self.v.rows() {
            v.row_mut(i).copy_from_slice(&self.v.row(i)[..k]);
        }
        self.u = u;
        self.v = v;
        self.vt = VPanel::from_v(&self.v);
    }
}

/// `u_row[j] = (x · v_j) / λ_j` — Eq. 11 for one row.
#[inline]
pub(crate) fn project_row(x: &[f64], v: &Matrix, lambda: &[f64], u_row: &mut [f64]) {
    let k = lambda.len();
    u_row[..k].fill(0.0);
    // Walk V row-wise (cache-friendly): u_j += x_l * v[l][j]. The widened
    // axpy applies the same op in the same ascending-j order.
    for (l, &xl) in x.iter().enumerate() {
        if xl == 0.0 {
            continue;
        }
        vecops::axpy(xl, &v.row(l)[..k], &mut u_row[..k]);
    }
    for (j, u) in u_row[..k].iter_mut().enumerate() {
        if lambda[j] > 0.0 {
            *u /= lambda[j];
        } else {
            *u = 0.0;
        }
    }
}

/// Emit `U = X V Λ⁻¹` (Eq. 11) for every row of `source` into `u`,
/// splitting the rows into disjoint contiguous bands written by `threads`
/// workers. Each worker owns a `&mut` band of `U`'s storage (via
/// [`Matrix::row_chunks_mut`]) and scans the matching row range of the
/// source, so no synchronization is needed and the output is bitwise
/// identical to the serial emission. Shared by plain-SVD pass 2 and SVDD
/// pass 3.
///
/// Falls back to one sequential scan for `threads ≤ 1` or tiny inputs.
pub(crate) fn emit_u<S: RowSource + ?Sized>(
    source: &S,
    v: &Matrix,
    lambda: &[f64],
    u: &mut Matrix,
    threads: usize,
) -> Result<()> {
    let n = source.rows();
    let k = lambda.len();
    debug_assert_eq!(u.rows(), n);
    debug_assert_eq!(u.cols(), k);
    if k == 0 {
        return Ok(());
    }
    if threads <= 1 || n < 2 * threads {
        return source.for_each_row(&mut |i, row| {
            project_row(row, v, lambda, u.row_mut(i));
            Ok(())
        });
    }
    let chunk = n.div_ceil(threads);
    let results: Vec<Result<()>> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (start, band) in u.row_chunks_mut(chunk) {
            let end = start + band.len() / k;
            handles.push(scope.spawn(move |_| -> Result<()> {
                let mut off = 0;
                source.scan_range(start, end, &mut |_, row| {
                    project_row(row, v, lambda, &mut band[off..off + k]);
                    off += k;
                    Ok(())
                })
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(AtsError::internal("svd projection worker panicked")),
            })
            .collect()
    })
    .map_err(|_| AtsError::internal("svd projection thread scope panicked"))?;
    results.into_iter().collect()
}

/// `out[j] = Σ_m λ_m u_m v[j][m]` — Eq. 12 for a whole row, walking `V`
/// row-wise (each output element is a dot over a contiguous `k`-slice).
/// Allocation-free; accumulates in ascending `m`, the canonical order every
/// reconstruction path in the workspace shares. Kept for callers that hold
/// `V` as a plain matrix (the append path); the serving path uses the
/// transposed-panel kernels in [`ats_linalg::kernels`] instead.
#[inline]
pub(crate) fn reconstruct_row(u_row: &[f64], lambda: &[f64], v: &Matrix, out: &mut [f64]) {
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for ((&l, &u), &vv) in lambda.iter().zip(u_row).zip(v.row(j)) {
            acc = vecops::fmadd(l * u, vv, acc);
        }
        *o = acc;
    }
}

impl CompressedMatrix for SvdCompressed {
    fn rows(&self) -> usize {
        self.u.rows()
    }

    fn cols(&self) -> usize {
        self.v.rows()
    }

    /// Eq. 12: `x̂ᵢⱼ = Σ_{m=1}^{k} λ_m u_{i,m} v_{j,m}` — `O(k)`.
    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows() {
            return Err(AtsError::oob("row", i, self.rows()));
        }
        if j >= self.cols() {
            return Err(AtsError::oob("column", j, self.cols()));
        }
        let ui = self.u.row(i);
        let vj = self.v.row(j);
        let mut acc = 0.0;
        for ((&u, &v), &l) in ui.iter().zip(vj).zip(&self.lambda) {
            acc = vecops::fmadd(l * u, v, acc);
        }
        Ok(acc)
    }

    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if i >= self.rows() {
            return Err(AtsError::oob("row", i, self.rows()));
        }
        if out.len() != self.cols() {
            return Err(AtsError::dims(
                "SvdCompressed::row_into",
                (1, out.len()),
                (1, self.cols()),
            ));
        }
        kernels::reconstruct_row(self.u.row(i), &self.lambda, &self.vt, out);
        Ok(())
    }

    /// One `U`-row lookup, then the fused-coefficient multi-cell kernel
    /// (blocks of four columns share the `λ ⊙ uᵢ` vector).
    fn cells_in_row(&self, i: usize, cols: &[usize], out: &mut [f64]) -> Result<()> {
        if i >= self.rows() {
            return Err(AtsError::oob("row", i, self.rows()));
        }
        if out.len() != cols.len() {
            return Err(AtsError::dims(
                "SvdCompressed::cells_in_row",
                (1, out.len()),
                (1, cols.len()),
            ));
        }
        let m = self.cols();
        for &j in cols {
            if j >= m {
                return Err(AtsError::oob("column", j, m));
            }
        }
        let mut coef = vec![0.0; self.k()];
        kernels::fuse_coefficients(&self.lambda, self.u.row(i), &mut coef);
        kernels::reconstruct_cells(&coef, &self.v, cols, out)
    }

    /// Blocked multi-row reconstruction: [`kernels::BLOCK_ROWS`] `U` rows
    /// are packed into a scratch block and share one sweep over each `Vᵀ`
    /// component slice. All row indices are validated before `out` is
    /// touched.
    fn rows_into(&self, rows: &[usize], out: &mut [f64]) -> Result<()> {
        let m = self.cols();
        if out.len() != rows.len() * m {
            return Err(AtsError::dims(
                "SvdCompressed::rows_into",
                (rows.len(), m),
                (out.len() / m.max(1), m),
            ));
        }
        let n = self.rows();
        for &i in rows {
            if i >= n {
                return Err(AtsError::oob("row", i, n));
            }
        }
        let k = self.k();
        if m == 0 {
            return Ok(());
        }
        if k == 0 {
            out.fill(0.0);
            return Ok(());
        }
        let mut ublock = vec![0.0; kernels::BLOCK_ROWS * k];
        for (rchunk, ochunk) in rows
            .chunks(kernels::BLOCK_ROWS)
            .zip(out.chunks_mut(kernels::BLOCK_ROWS * m))
        {
            let ub = &mut ublock[..rchunk.len() * k];
            for (&i, udst) in rchunk.iter().zip(ub.chunks_mut(k)) {
                udst.copy_from_slice(self.u.row(i));
            }
            kernels::reconstruct_rows(ub, &self.lambda, &self.vt, ochunk)?;
        }
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        svd_bytes(self.rows(), self.cols(), self.k())
    }

    fn method_name(&self) -> &'static str {
        "svd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_linalg::{Svd, SvdOptions};
    use rand::{Rng, SeedableRng};

    fn random_lowish_rank(n: usize, m: usize, seed: u64) -> Matrix {
        // rank-3 structure + noise
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n, 3, |_, _| rng.gen_range(-2.0..2.0));
        let b = Matrix::from_fn(3, m, |_, _| rng.gen_range(-2.0..2.0));
        let mut x = a.matmul(&b).unwrap();
        for v in x.as_mut_slice() {
            *v += rng.gen_range(-0.01..0.01);
        }
        x
    }

    #[test]
    fn two_pass_matches_in_memory_svd() {
        let x = random_lowish_rank(60, 10, 1);
        let c = SvdCompressed::compress(&x, 5, 1).unwrap();
        let mut reference = Svd::compute(&x, SvdOptions::default()).unwrap();
        reference.truncate(5);
        for i in 0..60 {
            for j in 0..10 {
                let got = c.cell(i, j).unwrap();
                let want = reference.reconstruct_cell(i, j);
                assert!((got - want).abs() < 1e-6, "({i},{j}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn full_rank_is_near_lossless() {
        let x = random_lowish_rank(40, 8, 2);
        let c = SvdCompressed::compress(&x, 8, 1).unwrap();
        for i in 0..40 {
            let mut row = vec![0.0; 8];
            c.row_into(i, &mut row).unwrap();
            for (a, b) in row.iter().zip(x.row(i)) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn k_clamped_to_rank() {
        // exactly rank-3 data: asking for 7 components keeps only ~3
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = Matrix::from_fn(30, 3, |_, _| rng.gen_range(-2.0..2.0));
        let b = Matrix::from_fn(3, 9, |_, _| rng.gen_range(-2.0..2.0));
        let x = a.matmul(&b).unwrap();
        let c = SvdCompressed::compress(&x, 7, 1).unwrap();
        assert!(c.k() <= 3, "kept {} components for rank-3 data", c.k());
        // ... and still reconstructs exactly (it is the full rank)
        for i in (0..30).step_by(7) {
            for j in 0..9 {
                assert!((c.cell(i, j).unwrap() - x[(i, j)]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn budget_constructor_obeys_space() {
        let x = random_lowish_rank(200, 20, 4);
        let budget = SpaceBudget::from_percent(20.0);
        let c = SvdCompressed::compress_budget(&x, budget, 1).unwrap();
        assert!(c.storage_bytes() <= budget.bytes(200, 20));
        assert!(c.space_ratio() <= 0.20 + 1e-9);
    }

    #[test]
    fn budget_too_small_errors() {
        let x = random_lowish_rank(50, 10, 5);
        let e = SvdCompressed::compress_budget(&x, SpaceBudget { fraction: 1e-6 }, 1);
        assert!(matches!(e, Err(AtsError::Budget(_))));
        assert!(SvdCompressed::compress(&x, 0, 1).is_err());
    }

    #[test]
    fn error_decreases_with_k() {
        let x = random_lowish_rank(80, 12, 6);
        let mut prev = f64::INFINITY;
        for k in [1usize, 2, 3, 6, 12] {
            let c = SvdCompressed::compress(&x, k, 1).unwrap();
            let mut sse = 0.0;
            let mut row = vec![0.0; 12];
            for i in 0..80 {
                c.row_into(i, &mut row).unwrap();
                for (a, b) in row.iter().zip(x.row(i)) {
                    sse += (a - b) * (a - b);
                }
            }
            assert!(sse <= prev + 1e-9, "error increased at k={k}");
            prev = sse;
        }
    }

    #[test]
    fn oob_and_shape_errors() {
        let x = random_lowish_rank(10, 5, 7);
        let c = SvdCompressed::compress(&x, 2, 1).unwrap();
        assert!(c.cell(10, 0).is_err());
        assert!(c.cell(0, 5).is_err());
        let mut wrong = vec![0.0; 4];
        assert!(c.row_into(0, &mut wrong).is_err());
        assert!(c.row_into(10, &mut [0.0; 5]).is_err());
    }

    #[test]
    fn lanczos_engine_matches_dense() {
        let x = random_lowish_rank(120, 16, 21);
        let dense = SvdCompressed::compress_with_engine(&x, 3, 1, EigenEngine::Dense).unwrap();
        let lz = SvdCompressed::compress_with_engine(&x, 3, 1, EigenEngine::Lanczos).unwrap();
        assert_eq!(dense.k(), lz.k());
        for i in (0..120).step_by(11) {
            for j in 0..16 {
                let a = dense.cell(i, j).unwrap();
                let b = lz.cell(i, j).unwrap();
                assert!(
                    (a - b).abs() < 1e-6 * a.abs().max(1.0),
                    "({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn parallel_pass1_same_result() {
        let x = random_lowish_rank(150, 9, 8);
        let c1 = SvdCompressed::compress(&x, 4, 1).unwrap();
        let c4 = SvdCompressed::compress(&x, 4, 4).unwrap();
        for i in (0..150).step_by(13) {
            for j in 0..9 {
                assert!((c1.cell(i, j).unwrap() - c4.cell(i, j).unwrap()).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn storage_bytes_eq9() {
        let x = random_lowish_rank(100, 10, 9);
        let c = SvdCompressed::compress(&x, 4, 1).unwrap();
        assert_eq!(c.storage_bytes(), (100 * 4 + 4 + 4 * 10) * 8);
        assert_eq!(c.method_name(), "svd");
    }

    #[test]
    fn truncate_reduces_k_and_storage() {
        let x = random_lowish_rank(50, 10, 10);
        let mut c = SvdCompressed::compress(&x, 6, 1).unwrap();
        let before = c.storage_bytes();
        c.truncate(2);
        assert_eq!(c.k(), 2);
        assert!(c.storage_bytes() < before);
        // still works
        c.cell(0, 0).unwrap();
    }

    #[test]
    fn works_from_disk_source_with_two_passes() {
        let dir = ats_common::TestDir::new("ats-svd2p");
        let path = dir.file("x.atsm");
        let x = random_lowish_rank(120, 8, 11);
        ats_storage::file::write_matrix(&path, &x).unwrap();
        let f = ats_storage::MatrixFile::open(&path).unwrap();
        let c = SvdCompressed::compress(&f, 3, 1).unwrap();
        // exactly two sequential passes over N rows
        assert_eq!(f.stats().logical_reads(), 2 * 120);
        let reference = SvdCompressed::compress(&x, 3, 1).unwrap();
        for i in (0..120).step_by(17) {
            for j in 0..8 {
                assert!((c.cell(i, j).unwrap() - reference.cell(i, j).unwrap()).abs() < 1e-9);
            }
        }
    }
}
