//! Row-wise Haar wavelet compression (the §2.3 "plethora of other
//! techniques" — wavelets — as a second spectral baseline).
//!
//! Like the DCT baseline, each row is transformed independently and the
//! largest-`k` *fixed positions* are kept: here the coarsest `k`
//! coefficients of an orthonormal Haar DWT. Wavelets localize in both
//! time and scale, so on signals with abrupt level shifts they can beat
//! the DCT — §2.3 predicts spectral methods suffer on "spikes or abrupt
//! jumps", and the Haar basis is the friendliest fixed basis for such
//! jumps. Rows whose length is not a power of two are zero-padded (the
//! pad length is implicit from `M`).

use crate::method::{CompressedMatrix, SpaceBudget, BYTES_PER_NUMBER};
use ats_common::{AtsError, Result};
use ats_linalg::Matrix;
use ats_storage::RowSource;

/// In-place orthonormal Haar DWT of a power-of-two-length buffer:
/// output layout `[approx | detail_coarse | … | detail_fine]`.
pub fn haar_forward(buf: &mut [f64]) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    let mut tmp = vec![0.0f64; n];
    let mut len = n;
    let s = std::f64::consts::FRAC_1_SQRT_2;
    while len > 1 {
        let half = len / 2;
        for i in 0..half {
            tmp[i] = (buf[2 * i] + buf[2 * i + 1]) * s;
            tmp[half + i] = (buf[2 * i] - buf[2 * i + 1]) * s;
        }
        buf[..len].copy_from_slice(&tmp[..len]);
        len = half;
    }
}

/// Inverse of [`haar_forward`].
pub fn haar_inverse(buf: &mut [f64]) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    let mut tmp = vec![0.0f64; n];
    let mut len = 2;
    let s = std::f64::consts::FRAC_1_SQRT_2;
    while len <= n {
        let half = len / 2;
        for i in 0..half {
            tmp[2 * i] = (buf[i] + buf[half + i]) * s;
            tmp[2 * i + 1] = (buf[i] - buf[half + i]) * s;
        }
        buf[..len].copy_from_slice(&tmp[..len]);
        len *= 2;
    }
}

/// A matrix compressed by keeping the first `k` Haar coefficients of
/// each (zero-padded) row.
#[derive(Debug, Clone)]
pub struct DwtCompressed {
    /// `N × k` coefficients.
    coeffs: Matrix,
    /// Original row length.
    m: usize,
    /// Padded (power-of-two) length.
    padded: usize,
}

impl DwtCompressed {
    /// Single-pass compression keeping `k` coarsest coefficients.
    pub fn compress<S: RowSource + ?Sized>(source: &S, k: usize) -> Result<Self> {
        let (n, m) = (source.rows(), source.cols());
        if m == 0 {
            return Err(AtsError::InvalidArgument("empty rows".into()));
        }
        let padded = m.next_power_of_two();
        if k == 0 || k > padded {
            return Err(AtsError::InvalidArgument(format!(
                "DWT coefficient count k={k} must be in 1..={padded}"
            )));
        }
        let mut coeffs = Matrix::zeros(n, k);
        let mut buf = vec![0.0f64; padded];
        source.for_each_row(&mut |i, row| {
            buf[..m].copy_from_slice(row);
            buf[m..].fill(0.0);
            haar_forward(&mut buf);
            coeffs.row_mut(i).copy_from_slice(&buf[..k]);
            Ok(())
        })?;
        Ok(DwtCompressed { coeffs, m, padded })
    }

    /// Budgeted build: storage is `N·k` numbers, so `k = ⌊fraction·M⌋`.
    pub fn compress_budget<S: RowSource + ?Sized>(source: &S, budget: SpaceBudget) -> Result<Self> {
        let k = budget.max_dct_k(source.cols());
        if k == 0 {
            return Err(AtsError::Budget(format!(
                "budget {:.3}% cannot hold even one DWT coefficient per row",
                budget.fraction * 100.0
            )));
        }
        Self::compress(source, k)
    }

    /// Retained coefficients per row.
    pub fn k(&self) -> usize {
        self.coeffs.cols()
    }
}

impl CompressedMatrix for DwtCompressed {
    fn rows(&self) -> usize {
        self.coeffs.rows()
    }

    fn cols(&self) -> usize {
        self.m
    }

    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows() {
            return Err(AtsError::oob("row", i, self.rows()));
        }
        if j >= self.m {
            return Err(AtsError::oob("column", j, self.m));
        }
        // O(padded) inverse for a single cell; rows are short (M ≤ a few
        // hundred), and cell queries batch through row_into anyway.
        let mut buf = vec![0.0f64; self.padded];
        buf[..self.k()].copy_from_slice(self.coeffs.row(i));
        haar_inverse(&mut buf);
        Ok(buf[j])
    }

    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if i >= self.rows() {
            return Err(AtsError::oob("row", i, self.rows()));
        }
        if out.len() != self.m {
            return Err(AtsError::dims(
                "DwtCompressed::row_into",
                (1, out.len()),
                (1, self.m),
            ));
        }
        let mut buf = vec![0.0f64; self.padded];
        buf[..self.k()].copy_from_slice(self.coeffs.row(i));
        haar_inverse(&mut buf);
        out.copy_from_slice(&buf[..self.m]);
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        self.rows() * self.k() * BYTES_PER_NUMBER
    }

    fn method_name(&self) -> &'static str {
        "dwt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn haar_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for n in [1usize, 2, 4, 8, 64, 256] {
            let orig: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let mut buf = orig.clone();
            haar_forward(&mut buf);
            haar_inverse(&mut buf);
            for (a, b) in buf.iter().zip(&orig) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn haar_is_orthonormal() {
        // Energy preservation (Parseval).
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let orig: Vec<f64> = (0..64).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let e0: f64 = orig.iter().map(|v| v * v).sum();
        let mut buf = orig;
        haar_forward(&mut buf);
        let e1: f64 = buf.iter().map(|v| v * v).sum();
        assert!((e0 - e1).abs() < 1e-9 * e0);
    }

    #[test]
    fn constant_signal_one_coefficient() {
        let x = Matrix::from_fn(3, 32, |i, _| (i + 1) as f64);
        let c = DwtCompressed::compress(&x, 1).unwrap();
        for i in 0..3 {
            for j in 0..32 {
                assert!((c.cell(i, j).unwrap() - (i + 1) as f64).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn step_function_compresses_perfectly() {
        // A single level shift halfway: Haar's best case — 2 coefficients
        // suffice (paper §2.3: spectral methods vs jumps; Haar handles
        // aligned jumps exactly).
        let x = Matrix::from_fn(2, 32, |_, j| if j < 16 { 5.0 } else { 1.0 });
        let c = DwtCompressed::compress(&x, 2).unwrap();
        let mut row = vec![0.0; 32];
        c.row_into(0, &mut row).unwrap();
        for (j, v) in row.iter().enumerate() {
            let want = if j < 16 { 5.0 } else { 1.0 };
            assert!((v - want).abs() < 1e-9, "j={j}");
        }
    }

    #[test]
    fn full_coefficients_lossless_padded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = Matrix::from_fn(5, 20, |_, _| rng.gen_range(-3.0..3.0)); // pads to 32
        let c = DwtCompressed::compress(&x, 32).unwrap();
        let mut row = vec![0.0; 20];
        for i in 0..5 {
            c.row_into(i, &mut row).unwrap();
            for (a, b) in row.iter().zip(x.row(i)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn error_decreases_with_k() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut x = Matrix::from_fn(6, 64, |_, _| rng.gen_range(-1.0..1.0));
        for i in 0..6 {
            let r = x.row_mut(i);
            for j in 1..64 {
                r[j] += r[j - 1]; // random walk
            }
        }
        let mut prev = f64::INFINITY;
        for k in [1usize, 2, 4, 8, 16, 32, 64] {
            let c = DwtCompressed::compress(&x, k).unwrap();
            let mut sse = 0.0;
            let mut row = vec![0.0; 64];
            for i in 0..6 {
                c.row_into(i, &mut row).unwrap();
                for (a, b) in row.iter().zip(x.row(i)) {
                    sse += (a - b) * (a - b);
                }
            }
            assert!(sse <= prev + 1e-9, "k={k}");
            prev = sse;
        }
    }

    #[test]
    fn budget_and_bounds() {
        let x = Matrix::from_fn(10, 40, |i, j| (i + j) as f64);
        let b = SpaceBudget::from_percent(25.0);
        let c = DwtCompressed::compress_budget(&x, b).unwrap();
        assert_eq!(c.k(), 10);
        assert!(c.storage_bytes() <= b.bytes(10, 40));
        assert!(c.cell(10, 0).is_err());
        assert!(c.cell(0, 40).is_err());
        assert!(DwtCompressed::compress(&x, 0).is_err());
        assert!(DwtCompressed::compress(&x, 65).is_err());
        assert_eq!(c.method_name(), "dwt");
    }
}
