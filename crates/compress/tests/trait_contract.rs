//! Contract tests: every `CompressedMatrix` implementation must honour
//! the same behavioural contract, checked uniformly through trait
//! objects (the way `ats-query` actually consumes them).

use ats_compress::cluster::{ClusterAlgo, ClusterCompressed};
use ats_compress::dct::DctCompressed;
use ats_compress::dwt::DwtCompressed;
use ats_compress::quantized::QuantizedSvd;
use ats_compress::sampling::SampleCompressed;
use ats_compress::{CompressedMatrix, SpaceBudget, SvdCompressed, SvddCompressed, SvddOptions};
use ats_linalg::Matrix;

fn dataset() -> Matrix {
    Matrix::from_fn(240, 32, |i, j| {
        ((i % 6) + 1) as f64 * if j % 8 < 5 { 2.0 } else { 0.4 } + (i as f64 * 0.01)
    })
}

fn all_methods(x: &Matrix) -> Vec<Box<dyn CompressedMatrix>> {
    let budget = SpaceBudget::from_percent(25.0);
    vec![
        Box::new(SvdCompressed::compress_budget(x, budget, 1).unwrap()),
        Box::new(SvddCompressed::compress(x, &SvddOptions::new(budget)).unwrap()),
        Box::new(DctCompressed::compress_budget(x, budget).unwrap()),
        Box::new(DwtCompressed::compress_budget(x, budget).unwrap()),
        Box::new(QuantizedSvd::compress_budget(x, budget, 1).unwrap()),
        Box::new(ClusterCompressed::compress_budget(x, budget, ClusterAlgo::Hierarchical).unwrap()),
        Box::new(SampleCompressed::compress_budget(x, budget, 1).unwrap()),
    ]
}

#[test]
fn dimensions_reported_consistently() {
    let x = dataset();
    for c in all_methods(&x) {
        assert_eq!(c.rows(), 240, "{}", c.method_name());
        assert_eq!(c.cols(), 32, "{}", c.method_name());
    }
}

#[test]
fn row_into_agrees_with_cell() {
    let x = dataset();
    for c in all_methods(&x) {
        let mut row = vec![0.0; 32];
        for i in [0usize, 119, 239] {
            c.row_into(i, &mut row).unwrap();
            for (j, &got) in row.iter().enumerate() {
                let cell = c.cell(i, j).unwrap();
                assert!(
                    (got - cell).abs() < 1e-9,
                    "{} ({i},{j}): row {got} vs cell {cell}",
                    c.method_name()
                );
            }
        }
    }
}

#[test]
fn out_of_bounds_is_an_error_everywhere() {
    let x = dataset();
    for c in all_methods(&x) {
        assert!(c.cell(240, 0).is_err(), "{} row oob", c.method_name());
        assert!(c.cell(0, 32).is_err(), "{} col oob", c.method_name());
        let mut short = vec![0.0; 31];
        assert!(
            c.row_into(0, &mut short).is_err(),
            "{} short buffer",
            c.method_name()
        );
    }
}

#[test]
fn budget_respected_everywhere() {
    let x = dataset();
    let limit = SpaceBudget::from_percent(25.0).bytes(240, 32);
    for c in all_methods(&x) {
        assert!(
            c.storage_bytes() <= limit,
            "{}: {} > {limit}",
            c.method_name(),
            c.storage_bytes()
        );
        assert!(c.space_ratio() <= 0.25 + 1e-9, "{}", c.method_name());
        assert!(c.space_ratio() > 0.0, "{}", c.method_name());
    }
}

#[test]
fn reconstructions_are_finite() {
    let x = dataset();
    for c in all_methods(&x) {
        let mut row = vec![0.0; 32];
        for i in (0..240).step_by(37) {
            c.row_into(i, &mut row).unwrap();
            assert!(
                row.iter().all(|v| v.is_finite()),
                "{} row {i} non-finite",
                c.method_name()
            );
        }
    }
}

#[test]
fn names_unique() {
    let x = dataset();
    let names: Vec<&str> = all_methods(&x).iter().map(|c| c.method_name()).collect();
    let set: std::collections::HashSet<&str> = names.iter().copied().collect();
    assert_eq!(set.len(), names.len(), "duplicate method names: {names:?}");
}
