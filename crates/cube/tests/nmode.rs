//! N-mode generalization tests: §6.1 mentions "N-mode analysis" as the
//! extension beyond 3 modes — the flattening machinery must handle
//! arbitrary dimensionality.

use ats_compress::SpaceBudget;
use ats_cube::compressed::CubeMethod;
use ats_cube::{CompressedCube, Cube, Flattening};

fn cube_4d() -> Cube {
    // product × store × week × channel, multiplicative low-rank model
    Cube::from_fn(vec![12, 6, 10, 3], |co| {
        let p = 1.0 + (co[0] % 5) as f64;
        let s = 0.5 + (co[1] % 3) as f64 * 0.4;
        let w = 1.0 + 0.3 * ((co[2] as f64) * 0.6).sin();
        let c = [1.0, 0.6, 0.25][co[3]];
        p * s * w * c * 10.0
    })
    .unwrap()
}

#[test]
fn four_mode_flatten_roundtrip_indices() {
    let cube = cube_4d();
    let f = Flattening {
        row_modes: vec![0, 3],
        col_modes: vec![2, 1],
    };
    f.validate(cube.shape()).unwrap();
    let (r, c) = f.matrix_shape(cube.shape());
    assert_eq!(r, 36);
    assert_eq!(c, 60);
    let mut seen = std::collections::HashSet::new();
    for a in 0..12 {
        for b in 0..6 {
            for w in 0..10 {
                for ch in 0..3 {
                    let coords = [a, b, w, ch];
                    let (ri, ci) = f.to_matrix_index(cube.shape(), &coords);
                    assert!(ri < r && ci < c);
                    assert!(seen.insert((ri, ci)), "collision at {coords:?}");
                    assert_eq!(f.to_cube_coords(cube.shape(), ri, ci), coords.to_vec());
                }
            }
        }
    }
    assert_eq!(seen.len(), cube.len());
}

#[test]
fn four_mode_compress_and_query() {
    let cube = cube_4d();
    let cc = CompressedCube::compress(&cube, SpaceBudget::from_percent(20.0), CubeMethod::Svd, 128)
        .unwrap();
    let mut sse = 0.0;
    let mut energy = 0.0;
    for a in 0..12 {
        for b in 0..6 {
            for w in 0..10 {
                for ch in 0..3 {
                    let t = cube.get(&[a, b, w, ch]).unwrap();
                    let g = cc.cell(&[a, b, w, ch]).unwrap();
                    sse += (t - g) * (t - g);
                    energy += t * t;
                }
            }
        }
    }
    assert!(
        sse / energy < 0.01,
        "4-mode relative error {}",
        (sse / energy).sqrt()
    );
}

#[test]
fn auto_grouping_prefers_largest_cols_under_cap() {
    let cube = cube_4d(); // shape [12, 6, 10, 3]
    let f = Flattening::choose(cube.shape(), 50).unwrap();
    let (r, c) = f.matrix_shape(cube.shape());
    assert!(c <= 50);
    assert!(r >= c, "Eq. 1 orientation: rows should be the long side");
    // better than the trivial "first mode vs rest" if that busts the cap
    assert_eq!(r * c, cube.len());
}

#[test]
fn two_mode_cube_is_a_matrix() {
    let cube = Cube::from_fn(vec![8, 5], |co| (co[0] * 5 + co[1]) as f64).unwrap();
    let f = Flattening::choose(cube.shape(), 5).unwrap();
    let m = f.flatten_cube(&cube).unwrap();
    assert_eq!(m.shape(), (8, 5));
    for i in 0..8 {
        for j in 0..5 {
            let (r, c) = f.to_matrix_index(cube.shape(), &[i, j]);
            assert_eq!(m[(r, c)], (i * 5 + j) as f64);
        }
    }
}
