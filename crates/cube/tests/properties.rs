//! Property tests for the flattening index arithmetic: for any shape and
//! any valid mode partition, cube↔matrix index mapping must be a
//! bijection that preserves cell values.

use ats_cube::{Cube, Flattening};
use proptest::prelude::*;

/// Random small cube shapes (2–4 modes, each of extent 1–6).
fn shape_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..6, 2..5)
}

/// A random valid partition of `0..nd` into non-empty row/col sides.
fn partition_strategy(nd: usize) -> impl Strategy<Value = Flattening> {
    // bitmask with at least one bit set and one clear
    (1usize..((1 << nd) - 1)).prop_map(move |mask| Flattening {
        row_modes: (0..nd).filter(|&m| mask & (1 << m) == 0).collect(),
        col_modes: (0..nd).filter(|&m| mask & (1 << m) != 0).collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn index_mapping_is_a_value_preserving_bijection(
        (shape, flattening) in shape_strategy()
            .prop_flat_map(|s| {
                let nd = s.len();
                (Just(s), partition_strategy(nd))
            })
    ) {
        flattening.validate(&shape).unwrap();
        // fill the cube with its own flat ordinal so values identify cells
        let mut counter = 0.0;
        let cube = Cube::from_fn(shape.clone(), |_| {
            counter += 1.0;
            counter
        }).unwrap();

        let m = flattening.flatten_cube(&cube).unwrap();
        let (rows, cols) = flattening.matrix_shape(&shape);
        prop_assert_eq!(rows * cols, cube.len());

        // every matrix cell maps back to a cube cell with the same value
        let mut seen = std::collections::HashSet::new();
        for r in 0..rows {
            for c in 0..cols {
                let coords = flattening.to_cube_coords(&shape, r, c);
                prop_assert_eq!(m[(r, c)], cube.get(&coords).unwrap());
                prop_assert!(seen.insert(coords.clone()));
                // and forward mapping inverts backward mapping
                prop_assert_eq!(flattening.to_matrix_index(&shape, &coords), (r, c));
            }
        }
        prop_assert_eq!(seen.len(), cube.len());
    }

    #[test]
    fn choose_always_returns_valid_partition(
        shape in shape_strategy(),
        cap in 1usize..64,
    ) {
        let f = Flattening::choose(&shape, cap).unwrap();
        prop_assert!(f.validate(&shape).is_ok());
        let (r, c) = f.matrix_shape(&shape);
        prop_assert_eq!(r * c, shape.iter().product::<usize>());
    }
}
