//! Dense N-dimensional arrays.

use ats_common::{AtsError, Result};

/// A dense N-dimensional array of `f64`, row-major (last mode varies
/// fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct Cube {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Cube {
    /// An all-zero cube. Errors on an empty shape or a zero-length mode.
    pub fn zeros(shape: Vec<usize>) -> Result<Self> {
        if shape.is_empty() || shape.contains(&0) {
            return Err(AtsError::InvalidArgument(format!(
                "invalid cube shape {shape:?}"
            )));
        }
        let cells: usize = shape.iter().product();
        Ok(Cube {
            shape,
            data: vec![0.0; cells],
        })
    }

    /// Build by evaluating `f(coords)` at every cell.
    pub fn from_fn(shape: Vec<usize>, mut f: impl FnMut(&[usize]) -> f64) -> Result<Self> {
        let mut cube = Cube::zeros(shape)?;
        let mut coords = vec![0usize; cube.ndim()];
        for flat in 0..cube.len() {
            cube.unflatten_into(flat, &mut coords);
            cube.data[flat] = f(&coords);
        }
        Ok(cube)
    }

    /// Number of modes (dimensions).
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// The shape vector.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the cube has zero cells (never true for a valid cube).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major offset of `coords`.
    pub fn flatten_index(&self, coords: &[usize]) -> Result<usize> {
        if coords.len() != self.ndim() {
            return Err(AtsError::dims(
                "Cube::flatten_index",
                (coords.len(), 1),
                (self.ndim(), 1),
            ));
        }
        let mut flat = 0usize;
        for (d, (&c, &s)) in coords.iter().zip(&self.shape).enumerate() {
            if c >= s {
                return Err(AtsError::oob("cube coordinate", c, s).with_mode(d));
            }
            flat = flat * s + c;
        }
        Ok(flat)
    }

    fn unflatten_into(&self, mut flat: usize, coords: &mut [usize]) {
        for d in (0..self.ndim()).rev() {
            coords[d] = flat % self.shape[d];
            flat /= self.shape[d];
        }
    }

    /// Read one cell.
    pub fn get(&self, coords: &[usize]) -> Result<f64> {
        Ok(self.data[self.flatten_index(coords)?])
    }

    /// Write one cell.
    pub fn set(&mut self, coords: &[usize], v: f64) -> Result<()> {
        let i = self.flatten_index(coords)?;
        self.data[i] = v;
        Ok(())
    }

    /// The flat backing storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

/// Internal helper so `flatten_index` can mention which mode failed
/// without a new error variant.
trait WithMode {
    fn with_mode(self, mode: usize) -> AtsError;
}

impl WithMode for AtsError {
    fn with_mode(self, mode: usize) -> AtsError {
        match self {
            AtsError::IndexOutOfBounds { index, bound, .. } => AtsError::InvalidArgument(format!(
                "cube coordinate {index} out of bounds {bound} in mode {mode}"
            )),
            e => e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut c = Cube::zeros(vec![2, 3, 4]).unwrap();
        assert_eq!(c.ndim(), 3);
        assert_eq!(c.len(), 24);
        c.set(&[1, 2, 3], 7.5).unwrap();
        assert_eq!(c.get(&[1, 2, 3]).unwrap(), 7.5);
        assert_eq!(c.get(&[0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn row_major_layout() {
        let c = Cube::from_fn(vec![2, 3], |co| (co[0] * 10 + co[1]) as f64).unwrap();
        assert_eq!(c.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn from_fn_coords_correct() {
        let c = Cube::from_fn(vec![2, 2, 2], |co| {
            (co[0] * 100 + co[1] * 10 + co[2]) as f64
        })
        .unwrap();
        assert_eq!(c.get(&[1, 0, 1]).unwrap(), 101.0);
        assert_eq!(c.get(&[0, 1, 0]).unwrap(), 10.0);
    }

    #[test]
    fn invalid_shapes_rejected() {
        assert!(Cube::zeros(vec![]).is_err());
        assert!(Cube::zeros(vec![3, 0, 2]).is_err());
    }

    #[test]
    fn bounds_checked() {
        let c = Cube::zeros(vec![2, 2]).unwrap();
        assert!(c.get(&[2, 0]).is_err());
        assert!(c.get(&[0, 0, 0]).is_err());
        assert!(c.get(&[0]).is_err());
        let msg = c.get(&[0, 5]).unwrap_err().to_string();
        assert!(msg.contains("mode 1"), "{msg}");
    }

    #[test]
    fn one_dimensional_cube() {
        let mut c = Cube::zeros(vec![5]).unwrap();
        c.set(&[4], 1.0).unwrap();
        assert_eq!(c.get(&[4]).unwrap(), 1.0);
        assert_eq!(c.flatten_index(&[3]).unwrap(), 3);
    }
}
