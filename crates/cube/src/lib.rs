//! # ats-cube
//!
//! DataCube compression (§6.1 of the paper).
//!
//! "Whereas we focus on time sequences in this paper, the techniques
//! described above apply in general to multi-dimensional data" — e.g. the
//! `productid × storeid × weekid` sales cube. The paper's recipe is to
//! **flatten** the cube into a 2-d matrix by grouping modes, e.g.
//! `productid × (storeid × weekid)` or `(productid × storeid) × weekid`,
//! then compress the matrix as usual; "since the cells in the array are
//! reconstructed individually, how dimensions are collapsed makes no
//! difference to the availability of access."
//!
//! - [`cube::Cube`] — a dense N-dimensional array;
//! - [`flatten::Flattening`] — a partition of modes into row-modes and
//!   column-modes, with the mixed-radix index arithmetic both ways, and
//!   [`flatten::Flattening::choose`] implementing the paper's sizing rule
//!   ("pick the largest size for the smaller dimension that still leaves
//!   it computable within the available memory resources");
//! - [`compressed::CompressedCube`] — any
//!   [`ats_compress::CompressedMatrix`] behind a cube-coordinate façade.

pub mod compressed;
pub mod cube;
pub mod flatten;

pub use compressed::CompressedCube;
pub use cube::Cube;
pub use flatten::Flattening;
