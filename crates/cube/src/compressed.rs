//! A compressed cube: any [`CompressedMatrix`] behind cube coordinates.
//!
//! §6.1's punchline — "since the cells in the array are reconstructed
//! individually, how dimensions are collapsed makes no difference to the
//! availability of access" — becomes an API here: compress the flattened
//! matrix with SVD or SVDD, keep the [`Flattening`], and answer
//! `cell(&[p, s, w])` by mapping coordinates and reconstructing one
//! matrix cell.

use crate::cube::Cube;
use crate::flatten::Flattening;
use ats_common::Result;
use ats_compress::{CompressedMatrix, SpaceBudget, SvdCompressed, SvddCompressed, SvddOptions};

/// Which compression method backs the cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CubeMethod {
    /// Plain truncated SVD.
    Svd,
    /// SVD with deltas (the paper's SVDD).
    Svdd,
}

/// A lossy-compressed N-dimensional cube.
pub struct CompressedCube {
    shape: Vec<usize>,
    flattening: Flattening,
    inner: Box<dyn CompressedMatrix>,
}

impl CompressedCube {
    /// Flatten `cube` (with the §6.1 auto-chosen grouping capped at
    /// `max_cols` columns) and compress to `budget` with `method`.
    pub fn compress(
        cube: &Cube,
        budget: SpaceBudget,
        method: CubeMethod,
        max_cols: usize,
    ) -> Result<Self> {
        let flattening = Flattening::choose(cube.shape(), max_cols)?;
        Self::compress_with(cube, budget, method, flattening)
    }

    /// Compress with an explicit flattening.
    pub fn compress_with(
        cube: &Cube,
        budget: SpaceBudget,
        method: CubeMethod,
        flattening: Flattening,
    ) -> Result<Self> {
        flattening.validate(cube.shape())?;
        let matrix = flattening.flatten_cube(cube)?;
        let inner: Box<dyn CompressedMatrix> = match method {
            CubeMethod::Svd => Box::new(SvdCompressed::compress_budget(&matrix, budget, 1)?),
            CubeMethod::Svdd => Box::new(SvddCompressed::compress(
                &matrix,
                &SvddOptions::new(budget),
            )?),
        };
        Ok(CompressedCube {
            shape: cube.shape().to_vec(),
            flattening,
            inner,
        })
    }

    /// The cube's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The flattening in use.
    pub fn flattening(&self) -> &Flattening {
        &self.flattening
    }

    /// Reconstruct one cube cell.
    pub fn cell(&self, coords: &[usize]) -> Result<f64> {
        // bounds are validated by the index mapping path below
        if coords.len() != self.shape.len() {
            return Err(ats_common::AtsError::dims(
                "CompressedCube::cell",
                (coords.len(), 1),
                (self.shape.len(), 1),
            ));
        }
        for (d, (&c, &s)) in coords.iter().zip(&self.shape).enumerate() {
            if c >= s {
                return Err(ats_common::AtsError::InvalidArgument(format!(
                    "coordinate {c} out of bounds {s} in mode {d}"
                )));
            }
        }
        let (r, c) = self.flattening.to_matrix_index(&self.shape, coords);
        self.inner.cell(r, c)
    }

    /// Compressed size in bytes (delegates to the inner matrix).
    pub fn storage_bytes(&self) -> usize {
        self.inner.storage_bytes()
    }

    /// Space ratio relative to the uncompressed cube.
    pub fn space_ratio(&self) -> f64 {
        self.inner.space_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sales-like cube with low-rank structure: product popularity ×
    /// store size × weekly seasonality (a rank-1 tensor), plus noise.
    fn sales_cube() -> Cube {
        let (p, s, w) = (40, 12, 10);
        Cube::from_fn(vec![p, s, w], |co| {
            let prod = 1.0 + (co[0] % 7) as f64;
            let store = 1.0 + (co[1] % 4) as f64 * 0.5;
            let week = 1.0 + 0.3 * ((co[2] as f64) * 0.7).sin();
            prod * store * week * 10.0
        })
        .unwrap()
    }

    #[test]
    fn svd_cube_reconstructs_well() {
        let cube = sales_cube();
        let cc =
            CompressedCube::compress(&cube, SpaceBudget::from_percent(20.0), CubeMethod::Svd, 128)
                .unwrap();
        let mut sse = 0.0;
        let mut energy = 0.0;
        for a in 0..40 {
            for b in 0..12 {
                for c in 0..10 {
                    let truth = cube.get(&[a, b, c]).unwrap();
                    let got = cc.cell(&[a, b, c]).unwrap();
                    sse += (truth - got) * (truth - got);
                    energy += truth * truth;
                }
            }
        }
        assert!(sse / energy < 1e-3, "relative error {}", sse / energy);
        assert!(cc.space_ratio() <= 0.2 + 1e-9);
    }

    #[test]
    fn svdd_cube_also_works() {
        let cube = sales_cube();
        let cc = CompressedCube::compress(
            &cube,
            SpaceBudget::from_percent(25.0),
            CubeMethod::Svdd,
            128,
        )
        .unwrap();
        let truth = cube.get(&[3, 5, 7]).unwrap();
        let got = cc.cell(&[3, 5, 7]).unwrap();
        assert!((truth - got).abs() / truth < 0.2);
    }

    #[test]
    fn grouping_choice_respects_cap() {
        let cube = sales_cube(); // 40 × 12 × 10
        let cc = CompressedCube::compress(
            &cube,
            SpaceBudget::from_percent(20.0),
            CubeMethod::Svd,
            100, // cols ≤ 100: best grouping not the 120-col one
        )
        .unwrap();
        let (_, cols) = cc.flattening().matrix_shape(cube.shape());
        assert!(cols <= 100);
    }

    #[test]
    fn both_groupings_give_access_to_every_cell() {
        // §6.1: how dimensions are collapsed doesn't affect access.
        let cube = sales_cube();
        for flattening in [
            Flattening {
                row_modes: vec![0],
                col_modes: vec![1, 2],
            },
            Flattening {
                row_modes: vec![0, 1],
                col_modes: vec![2],
            },
        ] {
            let cc = CompressedCube::compress_with(
                &cube,
                SpaceBudget::from_percent(30.0),
                CubeMethod::Svd,
                flattening,
            )
            .unwrap();
            for coords in [[0usize, 0, 0], [39, 11, 9], [17, 3, 5]] {
                let truth = cube.get(&coords).unwrap();
                let got = cc.cell(&coords).unwrap();
                assert!(
                    (truth - got).abs() / truth.max(1.0) < 0.25,
                    "{coords:?}: {got} vs {truth}"
                );
            }
        }
    }

    #[test]
    fn bad_coords_rejected() {
        let cube = sales_cube();
        let cc =
            CompressedCube::compress(&cube, SpaceBudget::from_percent(20.0), CubeMethod::Svd, 128)
                .unwrap();
        assert!(cc.cell(&[40, 0, 0]).is_err());
        assert!(cc.cell(&[0, 0]).is_err());
        assert!(cc.cell(&[0, 0, 0, 0]).is_err());
    }
}
