//! Mode flattening: cube coordinates ↔ matrix coordinates.
//!
//! A [`Flattening`] partitions the cube's modes into **row modes** and
//! **column modes**; a cube cell maps to the matrix cell whose row index
//! is the mixed-radix combination of its row-mode coordinates and whose
//! column index combines the column-mode coordinates. §6.1: which
//! grouping is preferable "is a function of the number of values in each
//! dimension … the more square the matrix, the better the compression,
//! but also the more the work that has to be done to compress. So we
//! pick the largest size for the smaller dimension that still leaves it
//! computable within the available memory resources" —
//! [`Flattening::choose`] implements exactly that rule.

use crate::cube::Cube;
use ats_common::{AtsError, Result};
use ats_linalg::Matrix;

/// A partition of cube modes into matrix rows and columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flattening {
    /// Modes combined into the matrix row index, in significance order.
    pub row_modes: Vec<usize>,
    /// Modes combined into the matrix column index, in significance order.
    pub col_modes: Vec<usize>,
}

impl Flattening {
    /// Validate against a cube shape: the two lists must partition
    /// `0..ndim` exactly, and the column side must be non-empty.
    pub fn validate(&self, shape: &[usize]) -> Result<()> {
        let nd = shape.len();
        let mut seen = vec![false; nd];
        for &m in self.row_modes.iter().chain(&self.col_modes) {
            if m >= nd {
                return Err(AtsError::oob("mode", m, nd));
            }
            if seen[m] {
                return Err(AtsError::InvalidArgument(format!(
                    "mode {m} appears twice in flattening"
                )));
            }
            seen[m] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err(AtsError::InvalidArgument(
                "flattening does not cover every mode".into(),
            ));
        }
        if self.row_modes.is_empty() || self.col_modes.is_empty() {
            return Err(AtsError::InvalidArgument(
                "flattening needs at least one row mode and one column mode".into(),
            ));
        }
        Ok(())
    }

    /// Matrix dimensions `(rows, cols)` this flattening produces.
    pub fn matrix_shape(&self, shape: &[usize]) -> (usize, usize) {
        let rows = self.row_modes.iter().map(|&m| shape[m]).product();
        let cols = self.col_modes.iter().map(|&m| shape[m]).product();
        (rows, cols)
    }

    /// Map cube coordinates to `(row, col)`.
    pub fn to_matrix_index(&self, shape: &[usize], coords: &[usize]) -> (usize, usize) {
        let mut row = 0usize;
        for &m in &self.row_modes {
            row = row * shape[m] + coords[m];
        }
        let mut col = 0usize;
        for &m in &self.col_modes {
            col = col * shape[m] + coords[m];
        }
        (row, col)
    }

    /// Map `(row, col)` back to cube coordinates.
    pub fn to_cube_coords(&self, shape: &[usize], mut row: usize, mut col: usize) -> Vec<usize> {
        let mut coords = vec![0usize; shape.len()];
        for &m in self.row_modes.iter().rev() {
            coords[m] = row % shape[m];
            row /= shape[m];
        }
        for &m in self.col_modes.iter().rev() {
            coords[m] = col % shape[m];
            col /= shape[m];
        }
        coords
    }

    /// The paper's §6.1 sizing rule: among all non-trivial mode
    /// partitions, pick the one whose **column count is as large as
    /// possible without exceeding `max_cols`** (the in-memory `M × M`
    /// Gram/eigen budget), preferring squarer matrices on ties; if every
    /// partition exceeds `max_cols`, fall back to the smallest column
    /// count. Modes within each side keep ascending order.
    pub fn choose(shape: &[usize], max_cols: usize) -> Result<Flattening> {
        let nd = shape.len();
        if nd < 2 {
            return Err(AtsError::InvalidArgument(
                "need at least two modes to flatten".into(),
            ));
        }
        let mut best: Option<(Flattening, usize)> = None;
        let mut fallback: Option<(Flattening, usize)> = None;
        // Every assignment of modes to {row, col}, both sides non-empty.
        for mask in 1..((1usize << nd) - 1) {
            let row_modes: Vec<usize> = (0..nd).filter(|&m| mask & (1 << m) == 0).collect();
            let col_modes: Vec<usize> = (0..nd).filter(|&m| mask & (1 << m) != 0).collect();
            let f = Flattening {
                row_modes,
                col_modes,
            };
            let (rows, cols) = f.matrix_shape(shape);
            // Keep N ≥ M: the algorithms assume the row side is the long
            // one (Eq. 1).
            if rows < cols {
                continue;
            }
            if cols <= max_cols {
                let better = best.as_ref().is_none_or(|&(_, c)| cols > c);
                if better {
                    best = Some((f, cols));
                }
            } else {
                let better = fallback.as_ref().is_none_or(|&(_, c)| cols < c);
                if better {
                    fallback = Some((f, cols));
                }
            }
        }
        best.or(fallback)
            .map(|(f, _)| f)
            .ok_or_else(|| AtsError::InvalidArgument("no valid flattening".into()))
    }

    /// Materialize the flattened cube as a dense matrix.
    pub fn flatten_cube(&self, cube: &Cube) -> Result<Matrix> {
        self.validate(cube.shape())?;
        let (rows, cols) = self.matrix_shape(cube.shape());
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let coords = self.to_cube_coords(cube.shape(), r, c);
                m[(r, c)] = cube.get(&coords)?;
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> Vec<usize> {
        vec![4, 3, 5] // product × store × week
    }

    #[test]
    fn validate_partition() {
        let good = Flattening {
            row_modes: vec![0],
            col_modes: vec![1, 2],
        };
        assert!(good.validate(&shape()).is_ok());
        let dup = Flattening {
            row_modes: vec![0, 1],
            col_modes: vec![1, 2],
        };
        assert!(dup.validate(&shape()).is_err());
        let missing = Flattening {
            row_modes: vec![0],
            col_modes: vec![2],
        };
        assert!(missing.validate(&shape()).is_err());
        let empty = Flattening {
            row_modes: vec![],
            col_modes: vec![0, 1, 2],
        };
        assert!(empty.validate(&shape()).is_err());
    }

    #[test]
    fn shapes_multiply() {
        let f = Flattening {
            row_modes: vec![0, 1],
            col_modes: vec![2],
        };
        assert_eq!(f.matrix_shape(&shape()), (12, 5));
    }

    #[test]
    fn index_roundtrip() {
        let s = shape();
        let f = Flattening {
            row_modes: vec![0, 2],
            col_modes: vec![1],
        };
        for a in 0..4 {
            for b in 0..3 {
                for c in 0..5 {
                    let (r, col) = f.to_matrix_index(&s, &[a, b, c]);
                    assert!(r < 20 && col < 3);
                    assert_eq!(f.to_cube_coords(&s, r, col), vec![a, b, c]);
                }
            }
        }
    }

    #[test]
    fn index_mapping_bijective() {
        let s = shape();
        let f = Flattening {
            row_modes: vec![1, 0],
            col_modes: vec![2],
        };
        let mut seen = std::collections::HashSet::new();
        for a in 0..4 {
            for b in 0..3 {
                for c in 0..5 {
                    assert!(seen.insert(f.to_matrix_index(&s, &[a, b, c])));
                }
            }
        }
        assert_eq!(seen.len(), 60);
    }

    #[test]
    fn choose_maximizes_cols_under_cap() {
        // shape (100, 10, 6): options for col side (keeping rows ≥ cols):
        // {1}=10, {2}=6, {1,2}=60. With cap 64 → cols 60.
        let f = Flattening::choose(&[100, 10, 6], 64).unwrap();
        let (r, c) = f.matrix_shape(&[100, 10, 6]);
        assert_eq!(c, 60);
        assert_eq!(r, 100);
        // With cap 16 → best is {1}=10.
        let f2 = Flattening::choose(&[100, 10, 6], 16).unwrap();
        assert_eq!(f2.matrix_shape(&[100, 10, 6]).1, 10);
    }

    #[test]
    fn choose_falls_back_when_cap_tiny() {
        let f = Flattening::choose(&[100, 10, 6], 2).unwrap();
        // nothing fits; smallest cols (6) chosen
        assert_eq!(f.matrix_shape(&[100, 10, 6]).1, 6);
    }

    #[test]
    fn choose_requires_two_modes() {
        assert!(Flattening::choose(&[5], 10).is_err());
    }

    #[test]
    fn flatten_cube_values_preserved() {
        let cube = Cube::from_fn(vec![2, 3, 4], |co| {
            (co[0] * 100 + co[1] * 10 + co[2]) as f64
        })
        .unwrap();
        let f = Flattening {
            row_modes: vec![0, 1],
            col_modes: vec![2],
        };
        let m = f.flatten_cube(&cube).unwrap();
        assert_eq!(m.shape(), (6, 4));
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    let (r, col) = f.to_matrix_index(&[2, 3, 4], &[a, b, c]);
                    assert_eq!(m[(r, col)], (a * 100 + b * 10 + c) as f64);
                }
            }
        }
    }
}
