//! [`TimeBlockedStore`]: the row-shard × time-block grid (store format
//! v4), and the time-axis growth path the paper lacks.
//!
//! The paper's decomposition is global along time: one `(U, Λ, V)` over
//! all `M` columns. That leaves two gaps the Zoom-SVD line of work
//! closes by *blocking the time axis*: no query can restrict its I/O to
//! a time range, and new time points cannot be absorbed without a full
//! rebuild (projecting under a frozen `V` is only sound for new *rows*).
//! Here the time axis is partitioned into column blocks, each carrying
//! its own complete decomposition — per-block `(U_b, Λ_b, V_b)`, its own
//! row-range shards and delta sets — stored as a nested v3 store under
//! `tblock-NNNN/`:
//!
//! ```text
//! store/
//!   manifest.txt            # v4: block column ranges, SSEs, nested CRCs
//!   tblock-0000/            # a full v3 store over cols 0..W
//!     manifest.txt  v.atsm  lambda.atsm
//!     shard-0000/ u.atsm deltas.bin
//!   tblock-0001/            # cols W..2W
//! ```
//!
//! Cell `(i, j)` routes to the block owning column `j` and reconstructs
//! there — still `O(k_b)` with one `U_b`-row fetch from the owning
//! shard, other blocks untouched. A range query `[t1..t2]` therefore
//! reads only the blocks overlapping the range (per-block [`IoSnapshot`]
//! counters prove it), and a query confined to one block is bitwise
//! what a standalone store over that column slice would answer, because
//! it *is* that store. Cross-block answers stitch per-block partials in
//! block order; since blocks partition the columns, the squared
//! reconstruction error of any stitched slice is bounded by the sum of
//! the overlapped blocks' recorded SSEs.
//!
//! New time points land via [`append_time_block`]: a fresh block with
//! its own decomposition — never a projection under some frozen
//! unrelated `V` — staged and published with the same
//! crash-discipline as the row-append path. Each block's manifest entry
//! records its reconstruction SSE at build time, the principled
//! retrain trigger (`ats info` flags blocks past a threshold).
//!
//! A v2/v3 directory is exactly a one-block v4 store whose block
//! directory is the store directory itself; [`TimeBlockedStore::open`]
//! serves it through the same code with zero behavioral change.

use crate::shard::{sharded_manifest_for, write_sharded_components, ShardedStore};
use ats_common::{AtsError, Result};
use ats_compress::method::block_budget;
use ats_compress::{
    shard_ranges, CompressedMatrix, DeltaStore, SpaceBudget, SvdCompressed, SvddCompressed,
    SvddOptions,
};
use ats_storage::store_dir::{
    file_crc, tblock_dir_name, write_sharded_manifest_into, MANIFEST_FILE,
    TIMEBLOCKED_STORE_VERSION,
};
use ats_storage::{
    IoSnapshot, RowSource, ShardSynopsis, ShardedManifest, StoreWriter, TimeBlockEntry,
    TimeBlockedManifest,
};
use std::path::Path;
use std::sync::Arc;

/// Column ranges of `b` time blocks over `cols` columns: contiguous,
/// ascending, near-even, covering exactly `0..cols`. Unlike the
/// row-shard ranges ([`ats_compress::shard_ranges`]) there is no pass
/// blocking to align to, so narrow matrices still split.
pub fn time_block_ranges(cols: usize, b: usize) -> Vec<(usize, usize)> {
    if cols == 0 {
        return Vec::new();
    }
    let b = b.clamp(1, cols);
    (0..b).map(|t| (t * cols / b, (t + 1) * cols / b)).collect()
}

/// Exact sum of squared reconstruction errors of `c` against `source`,
/// in one streaming pass (the per-block figure recorded in the v4
/// manifest; for SVDD it is the error *after* delta patching).
pub fn reconstruction_sse<S: RowSource + ?Sized>(
    source: &S,
    c: &dyn CompressedMatrix,
) -> Result<f64> {
    if source.rows() != c.rows() || source.cols() != c.cols() {
        return Err(AtsError::dims(
            "reconstruction_sse",
            (source.rows(), source.cols()),
            (c.rows(), c.cols()),
        ));
    }
    let mut buf = vec![0.0f64; c.cols()];
    let mut sse = 0.0f64;
    source.for_each_row(&mut |i, row| {
        c.row_into(i, &mut buf)?;
        for (x, xh) in row.iter().zip(buf.iter()) {
            let d = x - xh;
            sse += d * d;
        }
        Ok(())
    })?;
    Ok(sse)
}

/// A column-partitioned grid of compressed matrices serving as one: the
/// in-memory form of a time-blocked store (freshly built, before save)
/// and the routing engine behind the disk-backed [`TimeBlockedStore`].
///
/// Every query routes to the owning block(s) with columns rebased to
/// block-local indices; a single-block grid delegates straight through,
/// so wrapping a monolithic store here changes nothing.
pub struct MemTimeBlocked {
    blocks: Vec<Arc<dyn CompressedMatrix>>,
    /// Absolute `[start, end)` column bounds per block, contiguous from 0.
    bounds: Vec<(usize, usize)>,
    rows: usize,
    cols: usize,
}

impl MemTimeBlocked {
    /// Assemble a grid from blocks in time order. All blocks must have
    /// the same row count; column bounds accumulate from 0.
    pub fn new(blocks: Vec<Arc<dyn CompressedMatrix>>) -> Result<Self> {
        let first = blocks
            .first()
            .ok_or_else(|| AtsError::InvalidArgument("a time-blocked grid needs blocks".into()))?;
        let rows = first.rows();
        let mut bounds = Vec::new();
        let mut cols = 0usize;
        for (i, b) in blocks.iter().enumerate() {
            if b.rows() != rows {
                return Err(AtsError::dims(
                    "MemTimeBlocked::new",
                    (b.rows(), b.cols()),
                    (rows, b.cols()),
                ));
            }
            if b.cols() == 0 {
                return Err(AtsError::InvalidArgument(format!(
                    "time block {i} has zero columns"
                )));
            }
            let end = cols
                .checked_add(b.cols())
                .ok_or_else(|| AtsError::InvalidArgument("total column count overflows".into()))?;
            bounds.push((cols, end));
            cols = end;
        }
        Ok(MemTimeBlocked {
            blocks,
            bounds,
            rows,
            cols,
        })
    }

    /// The block owning absolute column `j`: `(index, start, end)`.
    fn route(&self, j: usize) -> Result<(usize, usize, usize)> {
        self.bounds
            .iter()
            .position(|&(s, e)| j >= s && j < e)
            .and_then(|idx| self.bounds.get(idx).map(|&(s, e)| (idx, s, e)))
            .ok_or_else(|| AtsError::oob("column", j, self.cols))
    }

    fn block(&self, idx: usize) -> Result<&dyn CompressedMatrix> {
        self.blocks
            .get(idx)
            .map(AsRef::as_ref)
            .ok_or_else(|| AtsError::oob("time block", idx, self.blocks.len()))
    }
}

impl CompressedMatrix for MemTimeBlocked {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        let (idx, start, _) = self.route(j)?;
        self.block(idx)?.cell(i, j - start)
    }

    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if out.len() != self.cols {
            return Err(AtsError::dims(
                "MemTimeBlocked::row_into",
                (1, out.len()),
                (1, self.cols),
            ));
        }
        for (b, &(s, e)) in self.blocks.iter().zip(&self.bounds) {
            let slot = out
                .get_mut(s..e)
                .ok_or_else(|| AtsError::internal("row_into output undersized"))?;
            b.row_into(i, slot)?;
        }
        Ok(())
    }

    /// Group the requested columns into consecutive same-block runs and
    /// answer each run with one call into the owning block (columns
    /// rebased), so the owning shard's one-`U`-fetch amortization
    /// applies per touched block and untouched blocks see no I/O.
    fn cells_in_row(&self, i: usize, cols: &[usize], out: &mut [f64]) -> Result<()> {
        if out.len() != cols.len() {
            return Err(AtsError::dims(
                "MemTimeBlocked::cells_in_row",
                (1, out.len()),
                (1, cols.len()),
            ));
        }
        if let (1, Some(b)) = (self.blocks.len(), self.blocks.first()) {
            return b.cells_in_row(i, cols, out);
        }
        for &j in cols {
            if j >= self.cols {
                return Err(AtsError::oob("column", j, self.cols));
            }
        }
        let mut pos = 0usize;
        while pos < cols.len() {
            let first = *cols
                .get(pos)
                .ok_or_else(|| AtsError::internal("cells_in_row cursor out of range"))?;
            let (idx, start, end) = self.route(first)?;
            let mut len = 1usize;
            while cols.get(pos + len).is_some_and(|&j| j >= start && j < end) {
                len += 1;
            }
            let run = cols
                .get(pos..pos + len)
                .ok_or_else(|| AtsError::internal("cells_in_row run out of range"))?;
            let local: Vec<usize> = run.iter().map(|&j| j - start).collect();
            let slot = out
                .get_mut(pos..pos + len)
                .ok_or_else(|| AtsError::internal("cells_in_row output undersized"))?;
            self.block(idx)?.cells_in_row(i, &local, slot)?;
            pos += len;
        }
        Ok(())
    }

    fn rows_into(&self, rows: &[usize], out: &mut [f64]) -> Result<()> {
        let m = self.cols;
        if out.len() != rows.len() * m {
            return Err(AtsError::dims(
                "MemTimeBlocked::rows_into",
                (rows.len(), m),
                (out.len() / m.max(1), m),
            ));
        }
        if let (1, Some(b)) = (self.blocks.len(), self.blocks.first()) {
            return b.rows_into(rows, out);
        }
        for &i in rows {
            if i >= self.rows {
                return Err(AtsError::oob("row", i, self.rows));
            }
        }
        if m == 0 {
            return Ok(());
        }
        for (b, &(s, e)) in self.blocks.iter().zip(&self.bounds) {
            let width = e - s;
            let mut buf = vec![0.0f64; rows.len() * width];
            b.rows_into(rows, &mut buf)?;
            for (orow, brow) in out.chunks_mut(m).zip(buf.chunks(width)) {
                let slot = orow
                    .get_mut(s..e)
                    .ok_or_else(|| AtsError::internal("rows_into output undersized"))?;
                slot.copy_from_slice(brow);
            }
        }
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.storage_bytes()).sum()
    }

    fn method_name(&self) -> &'static str {
        self.blocks
            .first()
            .map_or("timeblocked", |b| b.method_name())
    }

    fn shard_starts(&self) -> Vec<usize> {
        self.blocks
            .first()
            .map_or_else(Vec::new, |b| b.shard_starts())
    }

    fn time_block_starts(&self) -> Vec<usize> {
        self.bounds.iter().map(|&(s, _)| s).collect()
    }

    fn time_block(&self, b: usize) -> Option<&dyn CompressedMatrix> {
        self.blocks.get(b).map(AsRef::as_ref)
    }

    /// A single-block grid delegates straight through — wrapping a
    /// monolithic store changes nothing, including its synopses. A
    /// multi-block grid exposes none at the top level: each block's
    /// synopses describe *block-local* columns, so pruning happens per
    /// block via [`CompressedMatrix::time_block`].
    fn shard_synopsis(&self, shard: usize) -> Option<&ShardSynopsis> {
        match self.blocks.as_slice() {
            [only] => only.shard_synopsis(shard),
            _ => None,
        }
    }
}

/// An opened time-blocked store: one lazily-paged [`ShardedStore`] per
/// time block behind a routing [`MemTimeBlocked`] grid. Opening a v2/v3
/// directory yields a single-block grid that delegates straight through
/// — legacy stores serve unchanged.
pub struct TimeBlockedStore {
    manifest: TimeBlockedManifest,
    nested: Vec<ShardedManifest>,
    blocks: Vec<Arc<ShardedStore>>,
    grid: MemTimeBlocked,
}

impl TimeBlockedStore {
    /// Open a store directory of any format (v2, v3, or v4). The top
    /// manifest and every block's nested manifest are CRC cross-checked,
    /// and every block's component files are validated, before anything
    /// is served. `pool_pages` bounds the total `U` buffer-pool budget,
    /// split evenly across blocks (then across each block's shards).
    pub fn open(dir: impl AsRef<Path>, pool_pages: usize) -> Result<Self> {
        let dir = dir.as_ref();
        let manifest = TimeBlockedManifest::read(dir)?;
        let nested = manifest.read_blocks(dir)?;
        let per_block = (pool_pages / manifest.blocks.len().max(1)).max(1);
        let mut blocks = Vec::new();
        for i in 0..manifest.blocks.len() {
            blocks.push(Arc::new(ShardedStore::open(
                manifest.block_dir(dir, i),
                per_block,
            )?));
        }
        let grid = MemTimeBlocked::new(
            blocks
                .iter()
                .map(|b| Arc::clone(b) as Arc<dyn CompressedMatrix>)
                .collect(),
        )?;
        if grid.rows() != manifest.rows || grid.cols() != manifest.cols {
            return Err(AtsError::Corrupt(format!(
                "blocks assemble to {}x{}, manifest declares {}x{}",
                grid.rows(),
                grid.cols(),
                manifest.rows,
                manifest.cols
            )));
        }
        Ok(TimeBlockedStore {
            manifest,
            nested,
            blocks,
            grid,
        })
    }

    /// The validated top-level manifest (normalized for v2/v3 stores).
    pub fn manifest(&self) -> &TimeBlockedManifest {
        &self.manifest
    }

    /// Each block's validated nested manifest, in block order.
    pub fn nested_manifests(&self) -> &[ShardedManifest] {
        &self.nested
    }

    /// Number of time blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Borrow block `b`'s nested store.
    pub fn block(&self, b: usize) -> Result<&ShardedStore> {
        self.blocks
            .get(b)
            .map(AsRef::as_ref)
            .ok_or_else(|| AtsError::oob("time block", b, self.blocks.len()))
    }

    /// Total stored deltas across all blocks.
    pub fn num_deltas(&self) -> usize {
        self.nested.iter().map(|m| m.deltas).sum()
    }

    /// Whether the delta tables carry the §4.2 Bloom filter.
    pub fn has_bloom(&self) -> bool {
        self.manifest.bloom
    }

    /// Per-shard I/O counters flattened block-major: block 0's shards,
    /// then block 1's, … Cold shards (and whole cold blocks) report
    /// all-zero counters — the basis of the block-pruning assertions.
    pub fn shard_io_snapshots(&self) -> Vec<IoSnapshot> {
        self.blocks
            .iter()
            .flat_map(|b| b.shard_io_snapshots())
            .collect()
    }

    /// One rolled-up I/O snapshot per time block, in block order.
    pub fn block_io_snapshots(&self) -> Vec<IoSnapshot> {
        self.blocks.iter().map(|b| b.io_snapshot()).collect()
    }

    /// All blocks' I/O counters rolled into one snapshot.
    pub fn io_snapshot(&self) -> IoSnapshot {
        let mut total = IoSnapshot::default();
        for s in self.block_io_snapshots() {
            total.merge(&s);
        }
        total
    }
}

impl CompressedMatrix for TimeBlockedStore {
    fn rows(&self) -> usize {
        self.grid.rows()
    }
    fn cols(&self) -> usize {
        self.grid.cols()
    }
    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        self.grid.cell(i, j)
    }
    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        self.grid.row_into(i, out)
    }
    fn cells_in_row(&self, i: usize, cols: &[usize], out: &mut [f64]) -> Result<()> {
        self.grid.cells_in_row(i, cols, out)
    }
    fn rows_into(&self, rows: &[usize], out: &mut [f64]) -> Result<()> {
        self.grid.rows_into(rows, out)
    }
    fn storage_bytes(&self) -> usize {
        self.grid.storage_bytes()
    }
    fn method_name(&self) -> &'static str {
        self.grid.method_name()
    }
    fn shard_starts(&self) -> Vec<usize> {
        self.grid.shard_starts()
    }
    fn time_block_starts(&self) -> Vec<usize> {
        self.grid.time_block_starts()
    }
    fn time_block(&self, b: usize) -> Option<&dyn CompressedMatrix> {
        self.grid.time_block(b)
    }
    fn shard_synopsis(&self, shard: usize) -> Option<&ShardSynopsis> {
        self.grid.shard_synopsis(shard)
    }
}

/// One freshly-built block headed for a v4 save: its decomposition,
/// optional delta table, and build-time reconstruction SSE.
pub(crate) struct BlockToSave<'a> {
    pub svd: &'a SvdCompressed,
    pub deltas: Option<&'a DeltaStore>,
    pub sse: f64,
}

/// Persist a multi-block store into `dir` as a v4 store directory,
/// atomically: every block's complete nested v3 tree (components plus
/// CRC-filled nested manifest) is staged inside one [`StoreWriter`]
/// temp directory, and the top manifest is written by the single
/// all-or-nothing commit — a torn multi-block save never exposes a
/// half-written store.
pub(crate) fn save_timeblocked(
    dir: &Path,
    blocks: &[BlockToSave<'_>],
    method: &str,
    row_ranges: &[(usize, usize)],
) -> Result<()> {
    let first = blocks
        .first()
        .ok_or_else(|| AtsError::InvalidArgument("a time-blocked save needs blocks".into()))?;
    let rows = first.svd.rows();
    let bloom = first.deltas.is_some_and(DeltaStore::has_bloom);

    let writer = StoreWriter::begin(dir)?;
    let tmp = writer.path();
    let mut entries = Vec::new();
    let mut start = 0usize;
    for (i, b) in blocks.iter().enumerate() {
        let bdir = tmp.join(tblock_dir_name(i));
        std::fs::create_dir(&bdir)?;
        let shard_entries = write_sharded_components(&bdir, b.svd, b.deltas, row_ranges)?;
        write_sharded_manifest_into(
            &bdir,
            sharded_manifest_for(b.svd, b.deltas, method, shard_entries),
        )?;
        entries.push(TimeBlockEntry {
            start,
            end: start + b.svd.cols(),
            sse: Some(b.sse),
            crc_manifest: 0,
        });
        start += b.svd.cols();
    }
    writer.commit_timeblocked(TimeBlockedManifest {
        method: method.to_string(),
        rows,
        cols: start,
        bloom,
        blocks: entries,
        source_version: TIMEBLOCKED_STORE_VERSION,
    })
}

/// Default multiple of the store-wide mean per-cell squared error past
/// which a block is flagged for retraining (`ats info` marks it
/// `RETRAIN`): the block's approximation has drifted to twice the
/// store's average, so its decomposition no longer earns its rank.
pub const RETRAIN_SSE_FACTOR: f64 = 2.0;

/// Which blocks' recorded SSEs exceed the retrain threshold: block `b`
/// is flagged when its *per-cell* squared error exceeds `factor` times
/// the store-wide mean per-cell squared error. Comparing per cell (not
/// per block) keeps wide and narrow blocks on one scale; blocks with no
/// recorded SSE (normalized v2/v3 stores never measured one) are never
/// flagged.
pub fn retrain_flags(blocks: &[TimeBlockEntry], rows: usize, factor: f64) -> Vec<bool> {
    let mut cells = 0usize;
    let mut total = 0.0f64;
    for b in blocks {
        if let Some(sse) = b.sse {
            cells = cells.saturating_add(rows.saturating_mul(b.cols()));
            total += sse;
        }
    }
    if cells == 0 || total.is_nan() || total <= 0.0 {
        return vec![false; blocks.len()];
    }
    let mean = total / cells as f64;
    blocks
        .iter()
        .map(|b| {
            let bc = rows.saturating_mul(b.cols());
            match b.sse {
                Some(sse) if bc > 0 => sse / bc as f64 > factor * mean,
                _ => false,
            }
        })
        .collect()
}

/// What [`append_time_block`] did: which block the new time points
/// landed in, how many columns it holds, and its exact build-time
/// reconstruction SSE (also recorded in the manifest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeAppendReport {
    /// Index of the freshly-created time block.
    pub block_index: usize,
    /// Columns (time points) appended.
    pub cols: usize,
    /// Sum of squared reconstruction errors of the new block against
    /// the batch it was built from.
    pub sse: f64,
}

/// Extend the time axis of an on-disk v4 store: the batch of new time
/// points (`N × T`, one new column slice for all sequences) becomes a
/// **fresh block with its own decomposition** — never a projection
/// under a frozen `V`, which is only sound for new rows. The block is
/// built with the store's method and the per-block budget floor
/// ([`ats_compress::method::block_budget`]), staged and renamed in
/// crash-safely, and only then published by an atomic manifest replace:
/// until the new manifest lands the store opens exactly as before, and
/// an interrupted append leaves at worst an unreferenced orphan block.
///
/// v2/v3 directories are refused ([`AtsError::InvalidArgument`]):
/// re-save the store with `--time-blocks` first.
pub fn append_time_block<S: RowSource + ?Sized>(
    dir: impl AsRef<Path>,
    batch: &S,
    budget: SpaceBudget,
    threads: usize,
) -> Result<TimeAppendReport> {
    let dir = dir.as_ref();
    let manifest = TimeBlockedManifest::read(dir)?;
    if manifest.source_version != TIMEBLOCKED_STORE_VERSION {
        return Err(AtsError::InvalidArgument(
            "cannot extend the time axis of a legacy (v2/v3) store directory: \
             re-save it as a time-blocked (v4) store first (ats save --time-blocks)"
                .into(),
        ));
    }
    let nested = manifest.read_blocks(dir)?;
    if batch.rows() != manifest.rows {
        return Err(AtsError::dims(
            "append_time_block",
            (batch.rows(), batch.cols()),
            (manifest.rows, batch.cols()),
        ));
    }
    let t = batch.cols();
    if t == 0 {
        return Err(AtsError::InvalidArgument(
            "cannot append an empty batch of time points".into(),
        ));
    }

    // Build the new block with the same method and row-shard count as
    // the existing store, under the per-block budget floor.
    let shards = nested.first().map_or(1, |m| m.shards.len());
    let ranges = shard_ranges(manifest.rows, shards);
    let budget = block_budget(budget, manifest.rows, t);
    let index = manifest.blocks.len();
    let target = dir.join(tblock_dir_name(index));

    // Build, measure, then stage the block as a complete nested v3
    // store and rename it in (save_sharded's writer handles staging,
    // fsync, and orphan cleanup); publish only afterwards by replacing
    // the top manifest atomically.
    let sse = match manifest.method.as_str() {
        "svd" => {
            let svd = SvdCompressed::compress_budget_sharded(batch, budget, threads, &ranges)?;
            let sse = reconstruction_sse(batch, &svd)?;
            crate::shard::save_sharded(&target, &svd, None, &manifest.method, &ranges)?;
            sse
        }
        "svdd" => {
            let mut opts = SvddOptions::new(budget);
            opts.threads = threads;
            opts.with_bloom = manifest.bloom;
            let c = SvddCompressed::compress_sharded(batch, &opts, &ranges)?;
            let sse = reconstruction_sse(batch, &c)?;
            crate::shard::save_sharded(
                &target,
                c.svd(),
                Some(c.deltas()),
                &manifest.method,
                &ranges,
            )?;
            sse
        }
        other => {
            return Err(AtsError::Corrupt(format!(
                "manifest method {other:?} is not a disk-servable store (svd|svdd)"
            )))
        }
    };

    let mut next = manifest;
    let start = next.cols;
    next.blocks.push(TimeBlockEntry {
        start,
        end: start + t,
        sse: Some(sse),
        crc_manifest: file_crc(target.join(MANIFEST_FILE))?,
    });
    next.cols = start + t;
    let tmp_manifest = dir.join(format!(".manifest.tmp-{}", std::process::id()));
    std::fs::write(&tmp_manifest, next.encode())?;
    sync_path(&tmp_manifest)?;
    std::fs::rename(&tmp_manifest, dir.join(MANIFEST_FILE))?;
    sync_path(dir)?;

    Ok(TimeAppendReport {
        block_index: index,
        cols: t,
        sse,
    })
}

/// Flush a file or directory to stable storage.
fn sync_path(path: &Path) -> Result<()> {
    std::fs::File::open(path)?.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Method, SequenceStore};
    use ats_common::TestDir;
    use ats_linalg::Matrix;
    use ats_storage::ColumnSlice;

    /// Structured but full-rank-ish data: low-rank weekly pattern plus a
    /// small deterministic ripple, so every block has nonzero SSE.
    fn wavy(n: usize, m: usize) -> Matrix {
        let mut x = Matrix::from_fn(n, m, |i, j| {
            ((i % 5) + 1) as f64 * if j % 7 < 5 { 2.0 } else { 0.2 }
                + ((i * 7 + j * 13) % 11) as f64 * 0.05
        });
        x[(2, 1)] += 80.0;
        x[(n - 1, m - 1)] += 60.0;
        x
    }

    #[test]
    fn time_block_ranges_partition_evenly() {
        assert_eq!(time_block_ranges(10, 1), vec![(0, 10)]);
        assert_eq!(time_block_ranges(10, 3), vec![(0, 3), (3, 6), (6, 10)]);
        assert_eq!(time_block_ranges(3, 8), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(time_block_ranges(0, 4), Vec::new());
        // Always contiguous and covering.
        for (cols, b) in [(97, 4), (8, 8), (1000, 7)] {
            let r = time_block_ranges(cols, b);
            let mut next = 0;
            for &(s, e) in &r {
                assert_eq!(s, next);
                assert!(e > s);
                next = e;
            }
            assert_eq!(next, cols);
        }
    }

    #[test]
    fn block_local_queries_bitwise_match_standalone_slice_store() {
        // The tentpole invariant: a query confined to one time block
        // answers bitwise what a standalone store built over that
        // column slice (same per-block budget) answers — in memory and
        // through the v4 disk layout.
        let x = wavy(120, 24);
        let pct = SpaceBudget::from_percent(15.0);
        let blocked = SequenceStore::builder()
            .budget(pct)
            .time_blocks(3)
            .build(&x)
            .unwrap();
        assert_eq!(blocked.time_blocks(), 3);
        let (c0, c1) = (8usize, 16usize); // block 1 of 3 over 24 cols
        let slice = ColumnSlice::new(&x, c0, c1).unwrap();
        let standalone = SequenceStore::builder()
            .budget(block_budget(pct, 120, c1 - c0))
            .time_blocks(1)
            .build(&slice)
            .unwrap();
        for i in (0..120).step_by(7) {
            for j in c0..c1 {
                assert_eq!(
                    blocked.cell(i, j).unwrap().to_bits(),
                    standalone.cell(i, j - c0).unwrap().to_bits(),
                    "({i},{j})"
                );
            }
        }
        // Same through disk: v4 store vs v3 slice store.
        let tmp = TestDir::new("ats-tblock");
        let (d4, d3) = (tmp.file("v4"), tmp.file("v3"));
        blocked.save(&d4).unwrap();
        standalone.save(&d3).unwrap();
        let o4 = SequenceStore::open(&d4, 64).unwrap();
        let o3 = SequenceStore::open(&d3, 64).unwrap();
        assert_eq!(o4.time_blocks(), 3);
        assert_eq!(o3.time_blocks(), 1);
        for i in (0..120).step_by(13) {
            for j in c0..c1 {
                assert_eq!(
                    o4.cell(i, j).unwrap().to_bits(),
                    o3.cell(i, j - c0).unwrap().to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn v4_roundtrip_serves_bitwise_and_full_rows() {
        let x = wavy(90, 21);
        let built = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(20.0))
            .time_blocks(4)
            .threads(2)
            .build(&x)
            .unwrap();
        let tmp = TestDir::new("ats-tblock");
        let dir = tmp.file("store");
        built.save(&dir).unwrap();
        let opened = SequenceStore::open(&dir, 64).unwrap();
        assert_eq!(opened.method(), Method::Svdd);
        assert_eq!((opened.rows(), opened.cols()), (90, 21));
        assert_eq!(opened.time_blocks(), 4);
        assert_eq!(opened.storage_bytes(), built.storage_bytes());
        for i in (0..90).step_by(7) {
            for j in 0..21 {
                assert_eq!(
                    opened.cell(i, j).unwrap().to_bits(),
                    built.cell(i, j).unwrap().to_bits()
                );
            }
        }
        // Full-row reconstruction stitches across every block and
        // agrees with the per-cell path exactly.
        let seq = opened.sequence(47).unwrap();
        for (j, &got) in seq.iter().enumerate() {
            assert_eq!(got.to_bits(), opened.cell(47, j).unwrap().to_bits());
        }
    }

    #[test]
    fn queries_in_one_block_leave_other_blocks_cold() {
        let x = wavy(96, 30);
        let built = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(20.0))
            .time_blocks(3)
            .build(&x)
            .unwrap();
        let tmp = TestDir::new("ats-tblock");
        let dir = tmp.file("store");
        built.save(&dir).unwrap();
        let store = TimeBlockedStore::open(&dir, 96).unwrap();
        assert_eq!(store.block_count(), 3);
        // Touch only columns 10..20 — block 1 of [0..10, 10..20, 20..30].
        for i in (0..96).step_by(9) {
            for j in 12..18 {
                store.cell(i, j).unwrap();
            }
        }
        let per_block = store.block_io_snapshots();
        assert_eq!(per_block.len(), 3);
        assert!(per_block[1].physical_reads > 0);
        for (b, snap) in per_block.iter().enumerate() {
            if b != 1 {
                assert_eq!(snap.physical_reads, 0, "block {b} must stay cold");
                assert_eq!(snap.logical_reads, 0, "block {b} must stay cold");
            }
        }
    }

    #[test]
    fn block_sses_sum_to_total_and_bound_any_slice() {
        // The stitching error argument: blocks partition the columns,
        // so (a) the recorded per-block SSEs sum to the whole store's
        // reconstruction SSE, and (b) the exact squared error of any
        // column slice is bounded by the sum of the SSEs of the blocks
        // it overlaps.
        let x = wavy(80, 24);
        let built = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(15.0))
            .time_blocks(3)
            .build(&x)
            .unwrap();
        let tmp = TestDir::new("ats-tblock");
        let dir = tmp.file("store");
        built.save(&dir).unwrap();
        let store = TimeBlockedStore::open(&dir, 64).unwrap();
        let sses: Vec<f64> = store
            .manifest()
            .blocks
            .iter()
            .map(|b| b.sse.expect("v4 blocks record SSE"))
            .collect();
        assert!(sses.iter().all(|s| s.is_finite() && *s >= 0.0));
        let total = reconstruction_sse(&x, &store).unwrap();
        let sum: f64 = sses.iter().sum();
        assert!(
            (total - sum).abs() <= 1e-9 * sum.max(1.0),
            "total {total} vs per-block sum {sum}"
        );
        // A slice spanning the block 1/2 boundary (cols 12..20 of
        // [0..8, 8..16, 16..24]) errs at most the two blocks' SSEs.
        let slice = ColumnSlice::new(&x, 12, 20).unwrap();
        let mut buf = vec![0.0f64; 24];
        let mut slice_sse = 0.0f64;
        slice
            .for_each_row(&mut |i, row| {
                store.row_into(i, &mut buf)?;
                for (x, xh) in row.iter().zip(buf.get(12..20).into_iter().flatten()) {
                    let d = x - xh;
                    slice_sse += d * d;
                }
                Ok(())
            })
            .unwrap();
        let bound = sses[1] + sses[2];
        assert!(
            slice_sse <= bound * (1.0 + 1e-12) + 1e-12,
            "slice sse {slice_sse} exceeds stitching bound {bound}"
        );
    }

    #[test]
    fn retrain_flags_compare_per_cell_error() {
        let entry = |start: usize, end: usize, sse: Option<f64>| TimeBlockEntry {
            start,
            end,
            sse,
            crc_manifest: 0,
        };
        // Equal widths, one block 4x worse than the others: flagged at
        // the default factor, the rest not.
        let blocks = vec![
            entry(0, 10, Some(1.0)),
            entry(10, 20, Some(8.0)),
            entry(20, 30, Some(1.0)),
        ];
        assert_eq!(
            retrain_flags(&blocks, 50, RETRAIN_SSE_FACTOR),
            vec![false, true, false]
        );
        // A wide block with proportionally larger SSE is *not* worse per
        // cell and must not be flagged.
        let blocks = vec![entry(0, 10, Some(1.0)), entry(10, 40, Some(3.0))];
        assert_eq!(retrain_flags(&blocks, 50, 2.0), vec![false, false]);
        // Legacy stores without SSEs never flag; nor do all-zero SSEs.
        assert_eq!(retrain_flags(&[entry(0, 10, None)], 50, 2.0), vec![false]);
        assert_eq!(
            retrain_flags(
                &[entry(0, 10, Some(0.0)), entry(10, 20, Some(0.0))],
                50,
                2.0
            ),
            vec![false, false]
        );
    }

    #[test]
    fn append_time_block_grows_the_time_axis() {
        let x = wavy(100, 16);
        let built = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(20.0))
            .time_blocks(2)
            .build(&x)
            .unwrap();
        let tmp = TestDir::new("ats-tblock");
        let dir = tmp.file("store");
        built.save(&dir).unwrap();
        let before: Vec<u64> = (0..100)
            .step_by(11)
            .map(|i| built.cell(i, 5).unwrap().to_bits())
            .collect();

        // Nine new time points for every sequence: a fresh block with
        // its own decomposition.
        let batch = Matrix::from_fn(100, 9, |i, j| ((i % 4) + 1) as f64 * ((j % 3) as f64 + 0.5));
        let report = append_time_block(&dir, &batch, SpaceBudget::from_percent(20.0), 1).unwrap();
        assert_eq!(report.block_index, 2);
        assert_eq!(report.cols, 9);
        assert!(report.sse.is_finite() && report.sse >= 0.0);

        let store = TimeBlockedStore::open(&dir, 64).unwrap();
        assert_eq!(store.cols(), 25);
        assert_eq!(store.block_count(), 3);
        // The SSE survives the manifest round trip bit-exactly.
        assert_eq!(
            store.manifest().blocks[2].sse.map(f64::to_bits),
            Some(report.sse.to_bits())
        );
        // Old columns serve exactly as before the append.
        for (i, &bits) in (0..100).step_by(11).zip(&before) {
            assert_eq!(store.cell(i, 5).unwrap().to_bits(), bits);
        }
        // New columns answer from the new block's own decomposition.
        for i in (0..100).step_by(17) {
            let got = store.cell(i, 16 + 4).unwrap();
            let truth = batch[(i, 4)];
            assert!((got - truth).abs() < 1.0, "{got} vs {truth}");
        }
        // A second append stacks another block.
        let report2 = append_time_block(&dir, &batch, SpaceBudget::from_percent(20.0), 1).unwrap();
        assert_eq!(report2.block_index, 3);
        assert_eq!(TimeBlockedStore::open(&dir, 64).unwrap().cols(), 34);
    }

    #[test]
    fn append_time_block_refuses_legacy_and_bad_shapes() {
        let x = wavy(60, 12);
        let built = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(20.0))
            .time_blocks(1)
            .build(&x)
            .unwrap();
        let tmp = TestDir::new("ats-tblock");
        let dir = tmp.file("v3only");
        built.save(&dir).unwrap();
        let batch = Matrix::from_fn(60, 4, |i, j| (i + j) as f64);
        let err = append_time_block(&dir, &batch, SpaceBudget::from_percent(20.0), 1).unwrap_err();
        assert!(matches!(err, AtsError::InvalidArgument(_)), "{err}");
        assert!(err.to_string().contains("--time-blocks"), "{err}");

        // Re-save time-blocked, then bad shapes are refused cleanly.
        let dir4 = tmp.file("v4");
        SequenceStore::builder()
            .budget(SpaceBudget::from_percent(20.0))
            .time_blocks(2)
            .build(&x)
            .unwrap()
            .save(&dir4)
            .unwrap();
        let wrong_rows = Matrix::from_fn(61, 4, |i, j| (i + j) as f64);
        assert!(append_time_block(&dir4, &wrong_rows, SpaceBudget::from_percent(20.0), 1).is_err());
        let empty = Matrix::zeros(60, 0);
        assert!(append_time_block(&dir4, &empty, SpaceBudget::from_percent(20.0), 1).is_err());
        // And the store is unchanged by the refused appends.
        assert_eq!(TimeBlockedStore::open(&dir4, 16).unwrap().cols(), 12);
    }

    #[test]
    fn interrupted_time_append_leaves_store_intact() {
        let x = wavy(64, 10);
        let built = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(25.0))
            .time_blocks(2)
            .build(&x)
            .unwrap();
        let tmp = TestDir::new("ats-tblock");
        let dir = tmp.file("crash");
        built.save(&dir).unwrap();
        let baseline = TimeBlockedStore::open(&dir, 16)
            .unwrap()
            .cell(30, 7)
            .unwrap();

        // Crash after the block dir landed but before the manifest was
        // replaced: an unreferenced orphan; the store serves old data
        // and a retried append succeeds over the orphan.
        let orphan = dir.join(tblock_dir_name(2));
        std::fs::create_dir(&orphan).unwrap();
        std::fs::write(orphan.join("manifest.txt"), b"half-written").unwrap();
        let store = TimeBlockedStore::open(&dir, 16).unwrap();
        assert_eq!(store.cols(), 10);
        assert_eq!(store.cell(30, 7).unwrap().to_bits(), baseline.to_bits());
        drop(store);
        let batch = Matrix::from_fn(64, 3, |i, j| (i * j) as f64 + 1.0);
        let report = append_time_block(&dir, &batch, SpaceBudget::from_percent(25.0), 1).unwrap();
        assert_eq!(report.block_index, 2);
        assert_eq!(TimeBlockedStore::open(&dir, 16).unwrap().cols(), 13);
    }
}
