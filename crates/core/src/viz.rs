//! Visualization (Appendix A): datasets in SVD space, "essentially for
//! free".
//!
//! "We readily have the first 2 or 3 axes, which can be used to map each
//! time sequence into a point in 2- or 3-dimensional space. These points
//! can be plotted to give an idea of the density and structure of the
//! dataset." [`project_2d`] computes the Fig. 11 scatter coordinates
//! (each row's `U·Λ` coordinates along the top principal components);
//! [`ascii_scatter`] renders them in a terminal for the examples, and
//! [`outliers_by_residual`] flags the points SVDD would spend deltas on.

use ats_common::Result;
use ats_compress::{CompressedMatrix, SvdCompressed};
use ats_storage::RowSource;

/// Project every row onto the first `dims` principal components
/// (`dims ≤ k` of the provided SVD). Returns one coordinate vector per
/// row — the `U Λ` coordinates of Observation 3.4.
pub fn project(svd: &SvdCompressed, dims: usize) -> Vec<Vec<f64>> {
    let d = dims.min(svd.k());
    (0..svd.rows())
        .map(|i| (0..d).map(|m| svd.u()[(i, m)] * svd.lambda()[m]).collect())
        .collect()
}

/// Convenience: compress with 2 components and return `(x, y)` scatter
/// coordinates — the Fig. 11 plot data.
pub fn project_2d<S: RowSource + ?Sized>(source: &S) -> Result<Vec<(f64, f64)>> {
    let svd = SvdCompressed::compress(source, 2, 1)?;
    Ok(project(&svd, 2)
        .into_iter()
        .map(|p| (p[0], *p.get(1).unwrap_or(&0.0)))
        .collect())
}

/// Rank rows by how badly a rank-`k` SVD reconstructs them (residual
/// norm); the head of the list is Appendix A's "outliers … it is much
/// cheaper to store their deltas". Returns `(row, residual)` descending.
pub fn outliers_by_residual<S: RowSource + ?Sized>(
    source: &S,
    k: usize,
    top: usize,
) -> Result<Vec<(usize, f64)>> {
    let svd = SvdCompressed::compress(source, k, 1)?;
    let m = source.cols();
    let mut residuals: Vec<(usize, f64)> = Vec::with_capacity(source.rows());
    let mut recon = vec![0.0; m];
    source.for_each_row(&mut |i, row| {
        ats_compress::CompressedMatrix::row_into(&svd, i, &mut recon)?;
        let r: f64 = row
            .iter()
            .zip(recon.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        residuals.push((i, r.sqrt()));
        Ok(())
    })?;
    residuals.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    residuals.truncate(top);
    Ok(residuals)
}

/// Render points as an ASCII scatter plot (`width × height` characters,
/// density shown as ` .:+*#`). Axes are scaled to the data's bounding
/// box; an empty input yields an empty plot.
pub fn ascii_scatter(points: &[(f64, f64)], width: usize, height: usize) -> String {
    let (width, height) = (width.max(8), height.max(4));
    if points.is_empty() {
        return String::new();
    }
    let (mut x0, mut x1, mut y0, mut y1) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &(x, y) in points {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    let xr = (x1 - x0).max(1e-12);
    let yr = (y1 - y0).max(1e-12);
    let mut grid = vec![0u32; width * height];
    for &(x, y) in points {
        let cx = (((x - x0) / xr) * (width - 1) as f64).round() as usize;
        let cy = (((y - y0) / yr) * (height - 1) as f64).round() as usize;
        grid[(height - 1 - cy) * width + cx] += 1;
    }
    let glyphs = [' ', '.', ':', '+', '*', '#'];
    let maxd = grid.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::with_capacity((width + 1) * height);
    for r in 0..height {
        for c in 0..width {
            let d = grid[r * width + c];
            let g = if d == 0 {
                0
            } else {
                1 + ((d - 1) as usize * (glyphs.len() - 2)) / maxd as usize
            };
            out.push(glyphs[g.min(glyphs.len() - 1)]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_linalg::Matrix;

    fn two_groups() -> Matrix {
        // weekday-heavy rows and weekend-heavy rows (Table 1 style)
        Matrix::from_fn(40, 7, |i, j| {
            if i < 20 {
                if j < 5 {
                    (1 + i % 3) as f64
                } else {
                    0.0
                }
            } else if j >= 5 {
                (1 + i % 3) as f64
            } else {
                0.0
            }
        })
    }

    #[test]
    fn projection_separates_groups() {
        let pts = project_2d(&two_groups()).unwrap();
        assert_eq!(pts.len(), 40);
        // The two customer groups occupy orthogonal patterns: within each
        // group one coordinate dominates; across groups the dominant
        // coordinate differs.
        let dom = |p: &(f64, f64)| p.0.abs() > p.1.abs();
        let first = dom(&pts[0]);
        assert!(pts[..20].iter().all(|p| dom(p) == first));
        assert!(pts[20..].iter().all(|p| dom(p) != first));
    }

    #[test]
    fn project_matches_u_lambda() {
        let x = two_groups();
        let svd = SvdCompressed::compress(&x, 2, 1).unwrap();
        let pts = project(&svd, 2);
        for (i, p) in pts.iter().enumerate() {
            assert!((p[0] - svd.u()[(i, 0)] * svd.lambda()[0]).abs() < 1e-12);
        }
        // dims clamped to k
        let p3 = project(&svd, 5);
        assert_eq!(p3[0].len(), 2);
    }

    #[test]
    fn outliers_ranked_descending() {
        let mut x = two_groups();
        // An outlier big enough to dominate its row's residual but small
        // enough not to hijack the principal components themselves (the
        // "distraction" effect of Fig. 11 is tested elsewhere).
        x[(7, 2)] += 15.0;
        let out = outliers_by_residual(&x, 2, 5).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].0, 7, "spiked row should rank first");
        for w in out.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn ascii_scatter_renders() {
        let pts = vec![(0.0, 0.0), (1.0, 1.0), (0.5, 0.5), (0.5, 0.5)];
        let s = ascii_scatter(&pts, 20, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines.iter().all(|l| l.len() == 20));
        assert!(s.chars().any(|c| c != ' ' && c != '\n'));
    }

    #[test]
    fn ascii_scatter_degenerate_inputs() {
        assert_eq!(ascii_scatter(&[], 10, 5), "");
        // single point / zero range must not divide by zero
        let s = ascii_scatter(&[(3.0, 3.0)], 10, 5);
        assert!(s.contains('.') || s.contains('#') || s.contains(':'));
    }
}
