//! [`DiskStore`]: the paper's §4.1 serving architecture, made literal.
//!
//! "Assuming that `V` and `Λ` are already pinned in memory, that the
//! matrix `U` is stored row-wise on disk, and that an entire row fits in
//! one disk block, only a single disk access is required to perform this
//! reconstruction." This module persists a compressed SVD/SVDD store
//! that way and serves queries from it:
//!
//! - `u.atsm` — the `N × k` U matrix, row-aligned pages, behind an LRU
//!   buffer pool;
//! - `v.atsm`, `lambda.atsm` — loaded into memory at open;
//! - `deltas.bin` — the SVDD outlier triplets, loaded into the in-memory
//!   hash table (they are small by construction: `γ·16` bytes within the
//!   space budget);
//! - `manifest.txt` — the parsed, versioned store manifest (format v2):
//!   method, dimensions, `k`, delta count, Bloom flag, and a CRC per
//!   component file, all cross-checked at [`DiskStore::open`].
//!
//! Saves are crash-safe: every component is staged in a temp directory
//! and atomically renamed into place (see [`ats_storage::store_dir`]), so
//! an interrupted save leaves either the previous store or a clean
//! absence — never a torn directory that opens and serves wrong data.
//!
//! A cold cell query is exactly one page fetch of `U`'s row `i` plus
//! `O(k)` arithmetic plus one hash probe; tests count the fetches.

use ats_common::codec::{
    get_f64, get_u64, get_varint, put_f64, put_u64, put_varint, u64_from_usize, usize_from_u64,
};
use ats_common::{AtsError, Result};
use ats_compress::delta::DeltaStore;
use ats_compress::method::BYTES_PER_NUMBER;
use ats_compress::{CompressedMatrix, SvdCompressed, SvddCompressed};
use ats_linalg::{vecops, Matrix};
use ats_storage::file::{write_matrix, MatrixFile, MatrixFileWriter};
use ats_storage::store_dir::{validate_store_dir, StoreManifest, StoreWriter};
use ats_storage::{CachedFile, IoStats};
use std::path::Path;
use std::sync::Arc;

const DELTA_MAGIC: &[u8; 8] = b"ATSDELT1";

/// Minimum encoded size of one delta triplet: two varints (≥ 1 byte
/// each) plus an 8-byte delta value.
const MIN_TRIPLET_BYTES: usize = 10;

/// Persist an SVDD store into `dir`, atomically (created or replaced).
pub fn save_svdd(dir: impl AsRef<Path>, svdd: &SvddCompressed) -> Result<()> {
    save_store(dir.as_ref(), svdd.svd(), Some(svdd.deltas()), "svdd")
}

/// Persist a plain-SVD store into `dir`, atomically.
pub fn save_svd(dir: impl AsRef<Path>, svd: &SvdCompressed) -> Result<()> {
    save_store(dir.as_ref(), svd, None, "svd")
}

fn save_store(
    dir: &Path,
    svd: &SvdCompressed,
    deltas: Option<&DeltaStore>,
    method: &str,
) -> Result<()> {
    let writer = StoreWriter::begin(dir)?;
    let tmp = writer.path();
    // U row-wise: one row per sequence, k columns.
    let mut w = MatrixFileWriter::create(tmp.join("u.atsm"), svd.k())?;
    for i in 0..svd.rows() {
        w.append_row(svd.u().row(i))?;
    }
    w.finish()?;
    write_matrix(tmp.join("v.atsm"), svd.v())?;
    let lambda_m = Matrix::from_vec(1, svd.lambda().len(), svd.lambda().to_vec())?;
    write_matrix(tmp.join("lambda.atsm"), &lambda_m)?;
    write_deltas(&tmp.join("deltas.bin"), deltas, svd.cols())?;
    writer.commit(StoreManifest {
        method: method.to_string(),
        rows: svd.rows(),
        cols: svd.cols(),
        k: svd.k(),
        deltas: deltas.map_or(0, DeltaStore::len),
        bloom: deltas.is_some_and(DeltaStore::has_bloom),
        crcs: [0; 4], // filled by commit from the staged files
    })
}

/// One stored outlier: `(row, column, delta value)` as serialized in
/// `deltas.bin`.
pub type DeltaTriplet = (u64, u64, f64);

/// Serialize delta triplets into the `deltas.bin` byte image: the magic,
/// the column count, the triplet count, then a varint row, a varint
/// column, and a little-endian `f64` per triplet.
pub fn encode_deltas(cols: u64, triplets: &[DeltaTriplet]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24 + triplets.len() * 12);
    buf.extend_from_slice(DELTA_MAGIC);
    put_u64(&mut buf, cols);
    put_u64(&mut buf, u64_from_usize(triplets.len()));
    for &(r, c, d) in triplets {
        put_varint(&mut buf, r);
        put_varint(&mut buf, c);
        put_f64(&mut buf, d);
    }
    buf
}

/// Parse a `deltas.bin` byte image; returns `(cols, triplets)`.
///
/// Total on every input: truncated, oversized-count, and trailing-garbage
/// images all yield [`AtsError::Corrupt`], never a panic or an
/// attacker-sized allocation.
pub fn decode_deltas(buf: &[u8]) -> Result<(u64, Vec<DeltaTriplet>)> {
    if buf.len() < 24 || buf.get(..8) != Some(DELTA_MAGIC.as_slice()) {
        return Err(AtsError::Corrupt("bad delta file header".into()));
    }
    let cols = get_u64(buf, 8)?;
    let count_raw = get_u64(buf, 16)?;
    // Validate the count against the bytes actually present *before*
    // sizing any allocation: a corrupt count must not trigger a multi-GB
    // `with_capacity` only to fail at the first varint.
    let remaining = buf.len() - 24;
    if count_raw > u64_from_usize(remaining / MIN_TRIPLET_BYTES) {
        return Err(AtsError::Corrupt(format!(
            "delta file claims {count_raw} triplets but holds only {remaining} payload bytes"
        )));
    }
    let count = usize_from_u64(count_raw, "delta triplet count")?;
    let mut triplets = Vec::with_capacity(count);
    let mut p = 24usize;
    for _ in 0..count {
        let (r, used) = get_varint(buf, p)?;
        p += used;
        let (c, used) = get_varint(buf, p)?;
        p += used;
        let d = get_f64(buf, p)?;
        p += 8;
        triplets.push((r, c, d));
    }
    if p != buf.len() {
        return Err(AtsError::Corrupt(format!(
            "delta file has {} trailing bytes after {count} triplets",
            buf.len() - p
        )));
    }
    Ok((cols, triplets))
}

pub(crate) fn write_deltas(path: &Path, deltas: Option<&DeltaStore>, cols: usize) -> Result<()> {
    let triplets: Vec<DeltaTriplet> = deltas
        .map(|d| {
            d.iter()
                .map(|(r, c, v)| (u64_from_usize(r), u64_from_usize(c), v))
                .collect()
        })
        .unwrap_or_default();
    std::fs::write(path, encode_deltas(u64_from_usize(cols), &triplets))?;
    Ok(())
}

pub(crate) fn read_deltas(
    path: &Path,
    expected_cols: usize,
    with_bloom: bool,
) -> Result<DeltaStore> {
    let buf = std::fs::read(path)?;
    let (cols_raw, raw) = decode_deltas(&buf)?;
    let cols = usize_from_u64(cols_raw, "delta column count")?;
    if cols != expected_cols {
        return Err(AtsError::Corrupt(format!(
            "delta file claims {cols} columns, store has {expected_cols}"
        )));
    }
    let mut triplets = Vec::with_capacity(raw.len());
    for (r, c, d) in raw {
        triplets.push((
            usize_from_u64(r, "delta row")?,
            usize_from_u64(c, "delta column")?,
            d,
        ));
    }
    DeltaStore::build(cols, triplets, with_bloom)
}

/// An opened on-disk store: `V`/`Λ`/deltas in memory, `U` paged from
/// disk.
pub struct DiskStore {
    u: CachedFile,
    v: Matrix,
    lambda: Vec<f64>,
    deltas: DeltaStore,
    rows: usize,
    cols: usize,
    manifest: StoreManifest,
}

impl DiskStore {
    /// Open a store saved by [`save_svdd`] or [`save_svd`].
    ///
    /// The manifest is parsed first and every component file is verified
    /// against its recorded CRC, then the component headers are
    /// cross-checked against the manifest's dimensions — a store that
    /// opens is internally consistent, not merely present.
    ///
    /// `pool_pages` bounds the buffer pool (each page holds one row of
    /// `U`); pass e.g. 1024 for a ~`1024·k·8`-byte cache.
    pub fn open(dir: impl AsRef<Path>, pool_pages: usize) -> Result<Self> {
        let dir = dir.as_ref();
        let manifest = validate_store_dir(dir)?;
        if manifest.method != "svd" && manifest.method != "svdd" {
            return Err(AtsError::Corrupt(format!(
                "manifest method {:?} is not a disk-servable store (svd|svdd)",
                manifest.method
            )));
        }
        let stats = IoStats::new();
        let u_file = Arc::new(MatrixFile::open_with_stats(
            dir.join("u.atsm"),
            Arc::clone(&stats),
        )?);
        let v = ats_storage::file::read_matrix(dir.join("v.atsm"))?;
        let lambda_m = ats_storage::file::read_matrix(dir.join("lambda.atsm"))?;
        if lambda_m.rows() != 1 {
            return Err(AtsError::Corrupt(format!(
                "lambda.atsm must be a single row, has {}",
                lambda_m.rows()
            )));
        }
        let lambda = lambda_m.row(0).to_vec();
        let k = lambda.len();
        if u_file.cols() != k || v.cols() != k {
            return Err(AtsError::Corrupt(format!(
                "inconsistent store: U has {} columns, V has {}, Λ has {k}",
                u_file.cols(),
                v.cols()
            )));
        }
        let rows = u_file.rows();
        let cols = v.rows();
        if manifest.rows != rows || manifest.cols != cols || manifest.k != k {
            return Err(AtsError::Corrupt(format!(
                "manifest says {}x{} k={}, files hold {rows}x{cols} k={k}",
                manifest.rows, manifest.cols, manifest.k
            )));
        }
        let deltas = read_deltas(&dir.join("deltas.bin"), cols, manifest.bloom)?;
        if deltas.len() != manifest.deltas {
            return Err(AtsError::Corrupt(format!(
                "manifest says {} deltas, file holds {}",
                manifest.deltas,
                deltas.len()
            )));
        }
        Ok(DiskStore {
            u: CachedFile::row_aligned(u_file, pool_pages.max(1)),
            v,
            lambda,
            deltas,
            rows,
            cols,
            manifest,
        })
    }

    /// Number of retained principal components.
    pub fn k(&self) -> usize {
        self.lambda.len()
    }

    /// Number of stored deltas.
    pub fn num_deltas(&self) -> usize {
        self.deltas.len()
    }

    /// Whether the delta table carries the §4.2 Bloom filter — faithfully
    /// restored from the manifest, so a `.bloom(false)` store does not
    /// grow one on reload.
    pub fn has_bloom(&self) -> bool {
        self.deltas.has_bloom()
    }

    /// The validated store manifest this store was opened from.
    pub fn manifest(&self) -> &StoreManifest {
        &self.manifest
    }

    /// I/O counters of the `U` page cache — lets callers verify the
    /// one-disk-access property.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        self.u.stats()
    }
}

impl CompressedMatrix for DiskStore {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        if j >= self.cols {
            return Err(AtsError::oob("column", j, self.cols));
        }
        let mut u_row = vec![0.0f64; self.k()];
        self.u.read_row_into(i, &mut u_row)?; // ≤ 1 disk access
        let mut base = 0.0f64;
        for ((&lam, &uv), &vv) in self.lambda.iter().zip(&u_row).zip(self.v.row(j)) {
            base = vecops::fmadd(lam * uv, vv, base);
        }
        Ok(match self.deltas.probe(i, j) {
            Some(d) => base + d,
            None => base,
        })
    }

    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if out.len() != self.cols {
            return Err(AtsError::dims(
                "DiskStore::row_into",
                (1, out.len()),
                (1, self.cols),
            ));
        }
        let mut u_row = vec![0.0f64; self.k()];
        self.u.read_row_into(i, &mut u_row)?;
        for (j, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for ((&lam, &uv), &vv) in self.lambda.iter().zip(&u_row).zip(self.v.row(j)) {
                acc = vecops::fmadd(lam * uv, vv, acc);
            }
            *o = acc;
        }
        for (j, o) in out.iter_mut().enumerate() {
            if let Some(d) = self.deltas.probe(i, j) {
                *o += d;
            }
        }
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        (self.rows * self.k() + self.k() + self.cols * self.k()) * BYTES_PER_NUMBER
            + self.deltas.storage_bytes()
    }

    fn method_name(&self) -> &'static str {
        if self.manifest.method == "svd" {
            "disk-svd"
        } else {
            "disk-svdd"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_common::TestDir;
    use ats_compress::{SpaceBudget, SvddOptions};

    fn spiky(n: usize, m: usize) -> Matrix {
        let mut x = Matrix::from_fn(n, m, |i, j| {
            ((i % 4) + 1) as f64 * if j % 7 < 5 { 3.0 } else { 0.5 }
        });
        x[(3, 2)] += 500.0;
        x[(n - 1, m - 1)] += 300.0;
        x
    }

    fn svdd_budget(x: &Matrix, pct: f64) -> SvddCompressed {
        SvddCompressed::compress(x, &SvddOptions::new(SpaceBudget::from_percent(pct))).unwrap()
    }

    #[test]
    fn svdd_roundtrip_through_disk() {
        let x = spiky(200, 21);
        let svdd = svdd_budget(&x, 15.0);
        let tmp = TestDir::new("ats-disk");
        let dir = tmp.file("rt");
        save_svdd(&dir, &svdd).unwrap();
        let store = DiskStore::open(&dir, 64).unwrap();
        assert_eq!(store.rows(), 200);
        assert_eq!(store.cols(), 21);
        assert_eq!(store.k(), svdd.k_opt());
        assert_eq!(store.num_deltas(), svdd.num_deltas());
        // U survives the disk round trip bit-identically (f64 cells are
        // stored exactly), so reconstruction is *exactly* the in-memory
        // arithmetic — not merely close.
        let u_file = MatrixFile::open(dir.join("u.atsm")).unwrap();
        for i in 0..200 {
            assert_eq!(
                u_file.read_row(i).unwrap(),
                svdd.svd().u().row(i),
                "U row {i} bytes changed across the disk round trip"
            );
        }
        for i in (0..200).step_by(13) {
            for j in 0..21 {
                let a = store.cell(i, j).unwrap();
                let b = svdd.cell(i, j).unwrap();
                assert_eq!(a, b, "({i},{j}) must reconstruct exactly");
            }
        }
    }

    #[test]
    fn one_disk_access_per_cold_cell_query() {
        let x = spiky(100, 14);
        let svdd = svdd_budget(&x, 20.0);
        let tmp = TestDir::new("ats-disk");
        let dir = tmp.file("1io");
        save_svdd(&dir, &svdd).unwrap();
        let store = DiskStore::open(&dir, 256).unwrap();
        // Query one cell in each of 50 distinct rows, all cold.
        for i in 0..50 {
            store.cell(i, i % 14).unwrap();
        }
        assert_eq!(
            store.io_stats().physical_reads(),
            50,
            "the paper's single-disk-access claim (§4.1)"
        );
        // Re-query: all hits, no new disk accesses.
        for i in 0..50 {
            store.cell(i, (i + 1) % 14).unwrap();
        }
        assert_eq!(store.io_stats().physical_reads(), 50);
        assert_eq!(store.io_stats().cache_hits(), 50);
    }

    #[test]
    fn svd_store_without_deltas() {
        let x = spiky(80, 10);
        let svd = SvdCompressed::compress(&x, 3, 1).unwrap();
        let tmp = TestDir::new("ats-disk");
        let dir = tmp.file("svd");
        save_svd(&dir, &svd).unwrap();
        let store = DiskStore::open(&dir, 16).unwrap();
        assert_eq!(store.num_deltas(), 0);
        assert!(!store.has_bloom());
        assert_eq!(store.manifest().method, "svd");
        assert_eq!(store.method_name(), "disk-svd");
        for i in (0..80).step_by(7) {
            assert_eq!(store.cell(i, 5).unwrap(), svd.cell(i, 5).unwrap());
        }
    }

    #[test]
    fn row_reconstruction_matches_cells() {
        let x = spiky(60, 9);
        let svdd = svdd_budget(&x, 25.0);
        let tmp = TestDir::new("ats-disk");
        let dir = tmp.file("row");
        save_svdd(&dir, &svdd).unwrap();
        let store = DiskStore::open(&dir, 16).unwrap();
        let mut row = vec![0.0; 9];
        store.row_into(10, &mut row).unwrap();
        for (j, &got) in row.iter().enumerate() {
            assert!((got - store.cell(10, j).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn corrupt_store_detected() {
        let x = spiky(50, 8);
        let svdd = svdd_budget(&x, 25.0);
        let tmp = TestDir::new("ats-disk");
        let dir = tmp.file("corrupt");
        save_svdd(&dir, &svdd).unwrap();
        // Truncate V: open must fail with a corruption error.
        let v = std::fs::read(dir.join("v.atsm")).unwrap();
        std::fs::write(dir.join("v.atsm"), &v[..v.len() - 4]).unwrap();
        assert!(matches!(
            DiskStore::open(&dir, 16),
            Err(AtsError::Corrupt(_))
        ));
    }

    #[test]
    fn data_region_corruption_detected() {
        // Pre-v2, a flipped byte in U's *data* region opened fine and
        // served a wrong value; the manifest CRC now catches it.
        let x = spiky(50, 8);
        let svdd = svdd_budget(&x, 25.0);
        let tmp = TestDir::new("ats-disk");
        let dir = tmp.file("ubit");
        save_svdd(&dir, &svdd).unwrap();
        let path = dir.join("u.atsm");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = 48 + (bytes.len() - 48) / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            DiskStore::open(&dir, 16),
            Err(AtsError::Corrupt(_))
        ));
    }

    #[test]
    fn missing_dir_errors() {
        assert!(DiskStore::open("/nonexistent/ats-store", 16).is_err());
    }

    #[test]
    fn storage_bytes_matches_in_memory_form() {
        let x = spiky(70, 12);
        let svdd = svdd_budget(&x, 20.0);
        let tmp = TestDir::new("ats-disk");
        let dir = tmp.file("bytes");
        save_svdd(&dir, &svdd).unwrap();
        let store = DiskStore::open(&dir, 16).unwrap();
        assert_eq!(store.storage_bytes(), svdd.storage_bytes());
    }

    #[test]
    fn bloom_flag_round_trips() {
        // Regression: `read_deltas` used to pass `with_bloom: true`
        // unconditionally, so a `.bloom(false)` store silently grew a
        // Bloom filter on reload.
        let x = spiky(90, 11);
        for with_bloom in [false, true] {
            let mut opts = SvddOptions::new(SpaceBudget::from_percent(20.0));
            opts.with_bloom = with_bloom;
            let svdd = SvddCompressed::compress(&x, &opts).unwrap();
            assert_eq!(svdd.deltas().has_bloom(), with_bloom);
            let tmp = TestDir::new("ats-disk");
            let dir = tmp.file("bloom");
            save_svdd(&dir, &svdd).unwrap();
            let store = DiskStore::open(&dir, 16).unwrap();
            assert_eq!(store.has_bloom(), with_bloom, "bloom={with_bloom}");
            assert_eq!(store.manifest().bloom, with_bloom);
            assert_eq!(
                store.storage_bytes(),
                svdd.storage_bytes(),
                "storage accounting must match the in-memory store"
            );
        }
    }

    #[test]
    fn corrupt_delta_count_rejected_without_allocation() {
        // A truncated/corrupt deltas.bin claiming billions of triplets
        // must be rejected by the length check, not by a multi-GB
        // `Vec::with_capacity` attempt.
        let tmp = TestDir::new("ats-disk");
        let path = tmp.file("deltas.bin");
        let mut buf = Vec::new();
        buf.extend_from_slice(DELTA_MAGIC);
        put_u64(&mut buf, 10); // cols
        put_u64(&mut buf, u64::MAX / 2); // absurd count
        buf.extend_from_slice(&[0u8; 30]); // a few payload bytes
        std::fs::write(&path, &buf).unwrap();
        let err = read_deltas(&path, 10, true).unwrap_err();
        assert!(matches!(err, AtsError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("triplets"), "{err}");
    }

    #[test]
    fn delta_trailing_garbage_rejected() {
        let tmp = TestDir::new("ats-disk");
        let path = tmp.file("deltas.bin");
        let deltas = DeltaStore::build(10, vec![(1, 2, 3.0)], false).unwrap();
        write_deltas(&path, Some(&deltas), 10).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"junk");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_deltas(&path, 10, false),
            Err(AtsError::Corrupt(_))
        ));
    }

    #[test]
    fn interrupted_save_preserves_previous_store() {
        // Kill-point simulation: a crash mid-save leaves exactly the
        // state StoreWriter stages — a partial hidden temp directory next
        // to the untouched previous store. Opening must serve the old
        // data, bit for bit.
        let x = spiky(60, 8);
        let old = svdd_budget(&x, 25.0);
        let tmp = TestDir::new("ats-disk");
        let dir = tmp.file("killpoint");
        save_svdd(&dir, &old).unwrap();
        let baseline = DiskStore::open(&dir, 16).unwrap().cell(7, 3).unwrap();

        // Crash after each individual component write: the temp dir holds
        // a prefix of the components and no manifest.
        let stage_tmp = tmp.file(format!(".killpoint.tmp-{}", std::process::id()));
        for stage in 1..=4 {
            let _ = std::fs::remove_dir_all(&stage_tmp);
            std::fs::create_dir_all(&stage_tmp).unwrap();
            let names = ["u.atsm", "v.atsm", "lambda.atsm", "deltas.bin"];
            for name in &names[..stage] {
                std::fs::write(stage_tmp.join(name), b"half-written").unwrap();
            }
            let store = DiskStore::open(&dir, 16).unwrap();
            assert_eq!(
                store.cell(7, 3).unwrap(),
                baseline,
                "stage {stage}: old store must survive an interrupted save"
            );
        }
        let _ = std::fs::remove_dir_all(&stage_tmp);

        // Crash inside the swap window (old dir renamed aside, new not
        // yet renamed in): a clean absence, not a torn store.
        let aside = tmp.file(".killpoint.old-test");
        std::fs::rename(&dir, &aside).unwrap();
        assert!(DiskStore::open(&dir, 16).is_err());
        std::fs::rename(&aside, &dir).unwrap();
        assert_eq!(
            DiskStore::open(&dir, 16).unwrap().cell(7, 3).unwrap(),
            baseline
        );
    }

    #[test]
    fn save_replaces_existing_store_atomically() {
        let tmp = TestDir::new("ats-disk");
        let dir = tmp.file("replace");
        let a = svdd_budget(&spiky(40, 7), 25.0);
        save_svdd(&dir, &a).unwrap();
        let b = svdd_budget(&spiky(50, 9), 25.0);
        save_svdd(&dir, &b).unwrap();
        let store = DiskStore::open(&dir, 16).unwrap();
        assert_eq!((store.rows(), store.cols()), (50, 9));
        for i in (0..50).step_by(7) {
            assert_eq!(store.cell(i, 4).unwrap(), b.cell(i, 4).unwrap());
        }
    }

    #[test]
    fn manifest_dimension_mismatch_detected() {
        // A manifest that parses but disagrees with the component files
        // (here: a foreign v.atsm with consistent CRC re-recorded) must
        // not open. Build two stores and graft one's manifest onto the
        // other's components.
        let tmp = TestDir::new("ats-disk");
        let d1 = tmp.file("s1");
        let d2 = tmp.file("s2");
        save_svdd(&d1, &svdd_budget(&spiky(40, 7), 25.0)).unwrap();
        save_svdd(&d2, &svdd_budget(&spiky(60, 7), 25.0)).unwrap();
        // Graft s2's u.atsm (60 rows) into s1 (40 rows).
        let foreign_u = std::fs::read(d2.join("u.atsm")).unwrap();
        std::fs::write(d1.join("u.atsm"), &foreign_u).unwrap();
        // The stale CRC catches the graft immediately…
        assert!(validate_store_dir(&d1).is_err());
        // …and even a manifest "blessed" with recomputed CRCs (but s1's
        // original dimensions) must fail the dimension cross-check.
        let mut manifest = DiskStore::open(&d2, 4).unwrap().manifest().clone();
        manifest.rows = 40;
        for (i, name) in ats_storage::store_dir::COMPONENT_FILES.iter().enumerate() {
            manifest.crcs[i] = ats_storage::store_dir::file_crc(d1.join(name)).unwrap();
        }
        std::fs::write(d1.join("manifest.txt"), manifest.encode()).unwrap();
        match DiskStore::open(&d1, 4) {
            Err(AtsError::Corrupt(_)) => {}
            Err(e) => panic!("expected Corrupt, got {e}"),
            Ok(_) => panic!("dimension mismatch must not open"),
        }
    }
}
