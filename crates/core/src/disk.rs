//! [`DiskStore`]: the paper's §4.1 serving architecture, made literal.
//!
//! "Assuming that `V` and `Λ` are already pinned in memory, that the
//! matrix `U` is stored row-wise on disk, and that an entire row fits in
//! one disk block, only a single disk access is required to perform this
//! reconstruction." This module persists a compressed SVD/SVDD store
//! that way and serves queries from it:
//!
//! - `u.atsm` — the `N × k` U matrix, row-aligned pages, behind an LRU
//!   buffer pool;
//! - `v.atsm`, `lambda.atsm` — loaded into memory at open;
//! - `deltas.bin` — the SVDD outlier triplets, loaded into the in-memory
//!   hash table (they are small by construction: `γ·16` bytes within the
//!   space budget);
//! - `manifest.txt` — dimensions and method tag.
//!
//! A cold cell query is exactly one page fetch of `U`'s row `i` plus
//! `O(k)` arithmetic plus one hash probe; tests count the fetches.

use ats_common::codec::{get_u64, get_varint, put_f64, put_u64, put_varint};
use ats_common::{AtsError, Result};
use ats_compress::delta::DeltaStore;
use ats_compress::method::BYTES_PER_NUMBER;
use ats_compress::{CompressedMatrix, SvdCompressed, SvddCompressed};
use ats_linalg::Matrix;
use ats_storage::file::{write_matrix, MatrixFile, MatrixFileWriter};
use ats_storage::{CachedFile, IoStats};
use std::path::Path;
use std::sync::Arc;

const DELTA_MAGIC: &[u8; 8] = b"ATSDELT1";

/// Persist an SVDD store into `dir` (created if missing).
pub fn save_svdd(dir: impl AsRef<Path>, svdd: &SvddCompressed) -> Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    save_svd_parts(dir, svdd.svd())?;
    write_deltas(&dir.join("deltas.bin"), svdd.deltas(), svdd.cols())?;
    std::fs::write(
        dir.join("manifest.txt"),
        format!(
            "method=svdd\nrows={}\ncols={}\nk={}\ndeltas={}\n",
            svdd.rows(),
            svdd.cols(),
            svdd.k_opt(),
            svdd.num_deltas()
        ),
    )?;
    Ok(())
}

/// Persist a plain-SVD store into `dir`.
pub fn save_svd(dir: impl AsRef<Path>, svd: &SvdCompressed) -> Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    save_svd_parts(dir, svd)?;
    std::fs::write(
        dir.join("manifest.txt"),
        format!(
            "method=svd\nrows={}\ncols={}\nk={}\ndeltas=0\n",
            svd.rows(),
            svd.cols(),
            svd.k()
        ),
    )?;
    Ok(())
}

fn save_svd_parts(dir: &Path, svd: &SvdCompressed) -> Result<()> {
    // U row-wise: one row per sequence, k columns.
    let mut w = MatrixFileWriter::create(dir.join("u.atsm"), svd.k())?;
    for i in 0..svd.rows() {
        w.append_row(svd.u().row(i))?;
    }
    w.finish()?;
    write_matrix(dir.join("v.atsm"), svd.v())?;
    let lambda_m = Matrix::from_vec(1, svd.lambda().len(), svd.lambda().to_vec())?;
    write_matrix(dir.join("lambda.atsm"), &lambda_m)?;
    Ok(())
}

fn write_deltas(path: &Path, deltas: &DeltaStore, cols: usize) -> Result<()> {
    let mut buf = Vec::with_capacity(16 + deltas.len() * 12);
    buf.extend_from_slice(DELTA_MAGIC);
    put_u64(&mut buf, cols as u64);
    put_u64(&mut buf, deltas.len() as u64);
    for (r, c, d) in deltas.iter() {
        put_varint(&mut buf, r as u64);
        put_varint(&mut buf, c as u64);
        put_f64(&mut buf, d);
    }
    std::fs::write(path, buf)?;
    Ok(())
}

fn read_deltas(path: &Path, with_bloom: bool) -> Result<DeltaStore> {
    let buf = std::fs::read(path)?;
    if buf.len() < 24 || &buf[..8] != DELTA_MAGIC {
        return Err(AtsError::Corrupt("bad delta file header".into()));
    }
    let cols = get_u64(&buf, 8)? as usize;
    let count = get_u64(&buf, 16)? as usize;
    let mut triplets = Vec::with_capacity(count);
    let mut p = 24usize;
    for _ in 0..count {
        let (r, used) = get_varint(&buf, p)?;
        p += used;
        let (c, used) = get_varint(&buf, p)?;
        p += used;
        let d = ats_common::codec::get_f64(&buf, p)?;
        p += 8;
        triplets.push((r as usize, c as usize, d));
    }
    DeltaStore::build(cols, triplets, with_bloom)
}

/// An opened on-disk store: `V`/`Λ`/deltas in memory, `U` paged from
/// disk.
pub struct DiskStore {
    u: CachedFile,
    v: Matrix,
    lambda: Vec<f64>,
    deltas: DeltaStore,
    rows: usize,
    cols: usize,
}

impl DiskStore {
    /// Open a store saved by [`save_svdd`] or [`save_svd`].
    ///
    /// `pool_pages` bounds the buffer pool (each page holds one row of
    /// `U`); pass e.g. 1024 for a ~`1024·k·8`-byte cache.
    pub fn open(dir: impl AsRef<Path>, pool_pages: usize) -> Result<Self> {
        let dir = dir.as_ref();
        let stats = IoStats::new();
        let u_file = Arc::new(MatrixFile::open_with_stats(
            dir.join("u.atsm"),
            Arc::clone(&stats),
        )?);
        let v = ats_storage::file::read_matrix(dir.join("v.atsm"))?;
        let lambda_m = ats_storage::file::read_matrix(dir.join("lambda.atsm"))?;
        let lambda = lambda_m.row(0).to_vec();
        let k = lambda.len();
        if u_file.cols() != k || v.cols() != k {
            return Err(AtsError::Corrupt(format!(
                "inconsistent store: U has {} columns, V has {}, Λ has {k}",
                u_file.cols(),
                v.cols()
            )));
        }
        let rows = u_file.rows();
        let cols = v.rows();
        let deltas_path = dir.join("deltas.bin");
        let deltas = if deltas_path.exists() {
            read_deltas(&deltas_path, true)?
        } else {
            DeltaStore::build(cols, vec![], false)?
        };
        Ok(DiskStore {
            u: CachedFile::row_aligned(u_file, pool_pages.max(1)),
            v,
            lambda,
            deltas,
            rows,
            cols,
        })
    }

    /// Number of retained principal components.
    pub fn k(&self) -> usize {
        self.lambda.len()
    }

    /// Number of stored deltas.
    pub fn num_deltas(&self) -> usize {
        self.deltas.len()
    }

    /// I/O counters of the `U` page cache — lets callers verify the
    /// one-disk-access property.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        self.u.stats()
    }
}

impl CompressedMatrix for DiskStore {
    fn rows(&self) -> usize {
        self.rows
    }

    fn cols(&self) -> usize {
        self.cols
    }

    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        if j >= self.cols {
            return Err(AtsError::oob("column", j, self.cols));
        }
        let mut u_row = vec![0.0f64; self.k()];
        self.u.read_row_into(i, &mut u_row)?; // ≤ 1 disk access
        let base: f64 = (0..self.k())
            .map(|m| self.lambda[m] * u_row[m] * self.v[(j, m)])
            .sum();
        Ok(match self.deltas.probe(i, j) {
            Some(d) => base + d,
            None => base,
        })
    }

    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if out.len() != self.cols {
            return Err(AtsError::dims(
                "DiskStore::row_into",
                (1, out.len()),
                (1, self.cols),
            ));
        }
        let mut u_row = vec![0.0f64; self.k()];
        self.u.read_row_into(i, &mut u_row)?;
        for (j, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (m, (&lam, &uv)) in self.lambda.iter().zip(&u_row).enumerate() {
                acc += lam * uv * self.v[(j, m)];
            }
            *o = acc;
        }
        for (j, o) in out.iter_mut().enumerate() {
            if let Some(d) = self.deltas.probe(i, j) {
                *o += d;
            }
        }
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        (self.rows * self.k() + self.k() + self.cols * self.k()) * BYTES_PER_NUMBER
            + self.deltas.storage_bytes()
    }

    fn method_name(&self) -> &'static str {
        "disk-svdd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_compress::{SpaceBudget, SvddOptions};

    fn tmp(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ats-disk-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn spiky(n: usize, m: usize) -> Matrix {
        let mut x = Matrix::from_fn(n, m, |i, j| {
            ((i % 4) + 1) as f64 * if j % 7 < 5 { 3.0 } else { 0.5 }
        });
        x[(3, 2)] += 500.0;
        x[(n - 1, m - 1)] += 300.0;
        x
    }

    #[test]
    fn svdd_roundtrip_through_disk() {
        let x = spiky(200, 21);
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(15.0)))
            .unwrap();
        let dir = tmp("rt");
        save_svdd(&dir, &svdd).unwrap();
        let store = DiskStore::open(&dir, 64).unwrap();
        assert_eq!(store.rows(), 200);
        assert_eq!(store.cols(), 21);
        assert_eq!(store.k(), svdd.k_opt());
        assert_eq!(store.num_deltas(), svdd.num_deltas());
        for i in (0..200).step_by(13) {
            for j in 0..21 {
                let a = store.cell(i, j).unwrap();
                let b = svdd.cell(i, j).unwrap();
                assert!((a - b).abs() < 1e-9, "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn one_disk_access_per_cold_cell_query() {
        let x = spiky(100, 14);
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(20.0)))
            .unwrap();
        let dir = tmp("1io");
        save_svdd(&dir, &svdd).unwrap();
        let store = DiskStore::open(&dir, 256).unwrap();
        // Query one cell in each of 50 distinct rows, all cold.
        for i in 0..50 {
            store.cell(i, i % 14).unwrap();
        }
        assert_eq!(
            store.io_stats().physical_reads(),
            50,
            "the paper's single-disk-access claim (§4.1)"
        );
        // Re-query: all hits, no new disk accesses.
        for i in 0..50 {
            store.cell(i, (i + 1) % 14).unwrap();
        }
        assert_eq!(store.io_stats().physical_reads(), 50);
        assert_eq!(store.io_stats().cache_hits(), 50);
    }

    #[test]
    fn svd_store_without_deltas() {
        let x = spiky(80, 10);
        let svd = SvdCompressed::compress(&x, 3, 1).unwrap();
        let dir = tmp("svd");
        save_svd(&dir, &svd).unwrap();
        let store = DiskStore::open(&dir, 16).unwrap();
        assert_eq!(store.num_deltas(), 0);
        for i in (0..80).step_by(7) {
            assert!((store.cell(i, 5).unwrap() - svd.cell(i, 5).unwrap()).abs() < 1e-9);
        }
    }

    #[test]
    fn row_reconstruction_matches_cells() {
        let x = spiky(60, 9);
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(25.0)))
            .unwrap();
        let dir = tmp("row");
        save_svdd(&dir, &svdd).unwrap();
        let store = DiskStore::open(&dir, 16).unwrap();
        let mut row = vec![0.0; 9];
        store.row_into(10, &mut row).unwrap();
        for (j, &got) in row.iter().enumerate() {
            assert!((got - store.cell(10, j).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn corrupt_store_detected() {
        let x = spiky(50, 8);
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(25.0)))
            .unwrap();
        let dir = tmp("corrupt");
        save_svdd(&dir, &svdd).unwrap();
        // Truncate V: open must fail with a corruption error.
        let v = std::fs::read(dir.join("v.atsm")).unwrap();
        std::fs::write(dir.join("v.atsm"), &v[..v.len() - 4]).unwrap();
        assert!(DiskStore::open(&dir, 16).is_err());
    }

    #[test]
    fn missing_dir_errors() {
        assert!(DiskStore::open("/nonexistent/ats-store", 16).is_err());
    }

    #[test]
    fn storage_bytes_matches_in_memory_form() {
        let x = spiky(70, 12);
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(20.0)))
            .unwrap();
        let dir = tmp("bytes");
        save_svdd(&dir, &svdd).unwrap();
        let store = DiskStore::open(&dir, 16).unwrap();
        assert_eq!(store.storage_bytes(), svdd.storage_bytes());
    }
}
