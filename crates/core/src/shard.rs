//! [`ShardedStore`]: the §4.1 serving architecture scaled out to
//! row-range shards (store format v3).
//!
//! The factors are global — every shard reconstructs against the same
//! `V`/`Λ`, pinned in memory at open — while `U` rows and delta
//! triplets partition by row range into per-shard subdirectories:
//!
//! ```text
//! store/
//!   manifest.txt          # v3 manifest: shard row ranges + CRCs
//!   v.atsm  lambda.atsm   # shared factors
//!   shard-0000/ u.atsm deltas.bin
//!   shard-0001/ u.atsm deltas.bin
//! ```
//!
//! Opening is eager about *validation* (the manifest and every
//! component CRC are checked up front) but lazy about *instantiation*:
//! a shard's `U` pager and delta table are built on first touch, with
//! the buffer-pool page budget split evenly across shards. A v2
//! directory is exactly a one-shard v3 store (delta rows are stored
//! relative to the shard start, and a v2 store starts at row 0), so
//! legacy stores open here unchanged.
//!
//! The append path (`§1`: updates are rare and batched) lands new rows
//! in a fresh shard under the *frozen* global `V`: each new row is
//! projected onto the existing principal components and its exact
//! reconstruction SSE is recorded in the manifest (`append-sse`), so
//! the error introduced by not re-deriving the factors is tracked, not
//! hidden. The shard directory is staged, fsynced, and renamed in
//! before the manifest is atomically replaced — a crash leaves the old
//! store or an unreferenced orphan directory, never a torn store.

use crate::disk::{encode_deltas, read_deltas, DeltaTriplet};
use ats_common::codec::{u64_from_usize, usize_from_u64};
use ats_common::{AtsError, Result};
use ats_compress::delta::DELTA_BYTES;
use ats_compress::method::BYTES_PER_NUMBER;
use ats_compress::{project_frozen, CompressedMatrix, DeltaStore, GramCache, SvdCompressed};
use ats_linalg::kernels::{self, VPanel};
use ats_linalg::Matrix;
use ats_storage::file::{read_matrix, write_matrix, MatrixFile, MatrixFileWriter};
use ats_storage::store_dir::{
    file_crc, shard_dir_name, validate_sharded_store_dir, MANIFEST_FILE, SHARDED_STORE_VERSION,
};
use ats_storage::synopsis::{ShardSynopsis, SynopsisBuilder, SYNOPSIS_FILE};
use ats_storage::{
    CachedFile, IoSnapshot, IoStats, RowSource, ShardEntry, ShardedManifest, StoreWriter,
};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Persist an SVD/SVDD store into `dir` as a sharded (v3) store
/// directory, atomically. `ranges` lists the row range of each shard,
/// contiguous and ascending, covering exactly `0..rows` — the same
/// ranges the sharded build passes ran over (see
/// [`ats_compress::shard_ranges`]).
///
/// Pass 3 of the build, made literal: one `U` file per shard (the rows
/// of the already-computed global `U` sliced by range) and one delta
/// partition per shard, with delta rows stored relative to the shard
/// start and sorted by `(row, col)` so the byte image is deterministic.
pub(crate) fn save_sharded(
    dir: &Path,
    svd: &SvdCompressed,
    deltas: Option<&DeltaStore>,
    method: &str,
    ranges: &[(usize, usize)],
) -> Result<()> {
    let writer = StoreWriter::begin(dir)?;
    let entries = write_sharded_components(writer.path(), svd, deltas, ranges)?;
    writer.commit_sharded(sharded_manifest_for(svd, deltas, method, entries))
}

/// The v3 manifest describing a freshly-staged store, CRCs unfilled
/// (the commit path computes them from the staged files).
pub(crate) fn sharded_manifest_for(
    svd: &SvdCompressed,
    deltas: Option<&DeltaStore>,
    method: &str,
    entries: Vec<ShardEntry>,
) -> ShardedManifest {
    ShardedManifest {
        method: method.to_string(),
        rows: svd.rows(),
        cols: svd.cols(),
        k: svd.k(),
        deltas: deltas.map_or(0, DeltaStore::len),
        bloom: deltas.is_some_and(DeltaStore::has_bloom),
        crc_v: 0,
        crc_lambda: 0,
        shards: entries,
        source_version: SHARDED_STORE_VERSION,
    }
}

/// Write a store's component files (shared factors plus per-shard `U`
/// slices and delta partitions) into `dir` in the v3 layout, returning
/// the shard entries with CRCs unfilled. Shared by the v3 save (which
/// stages into a [`StoreWriter`] temp dir) and the v4 save (which
/// stages one of these trees per time block).
pub(crate) fn write_sharded_components(
    dir: &Path,
    svd: &SvdCompressed,
    deltas: Option<&DeltaStore>,
    ranges: &[(usize, usize)],
) -> Result<Vec<ShardEntry>> {
    let rows = svd.rows();
    let cols = svd.cols();
    check_ranges(ranges, rows)?;

    // Partition the delta triplets by owning shard, rebased to
    // shard-local rows.
    let mut buckets: Vec<Vec<DeltaTriplet>> = vec![Vec::new(); ranges.len()];
    if let Some(d) = deltas {
        for (r, c, v) in d.iter() {
            let idx = ranges
                .iter()
                .position(|&(s, e)| r >= s && r < e)
                .ok_or_else(|| AtsError::oob("delta row", r, rows))?;
            if let (Some(bucket), Some(&(start, _))) = (buckets.get_mut(idx), ranges.get(idx)) {
                bucket.push((u64_from_usize(r - start), u64_from_usize(c), v));
            }
        }
    }
    for bucket in &mut buckets {
        bucket.sort_unstable_by_key(|&(r, c, _)| (r, c));
    }

    write_matrix(dir.join("v.atsm"), svd.v())?;
    let lambda_m = Matrix::from_vec(1, svd.lambda().len(), svd.lambda().to_vec())?;
    write_matrix(dir.join("lambda.atsm"), &lambda_m)?;

    // Pass 3 is already walking every row of `U`; reconstruct each row
    // through the same panel kernel the serving path uses and patch the
    // shard's deltas in, so the emitted synopsis bounds the *served*
    // values exactly — no widening slack for deltas is needed.
    let vt = VPanel::from_v(svd.v());
    let mut entries = Vec::with_capacity(ranges.len());
    for (idx, (&(start, end), bucket)) in ranges.iter().zip(&buckets).enumerate() {
        let sdir = dir.join(shard_dir_name(idx));
        std::fs::create_dir(&sdir)?;
        let mut w = MatrixFileWriter::create(sdir.join("u.atsm"), svd.k())?;
        for i in start..end {
            w.append_row(svd.u().row(i))?;
        }
        w.finish()?;
        std::fs::write(
            sdir.join("deltas.bin"),
            encode_deltas(u64_from_usize(cols), bucket),
        )?;
        let mut synopsis = SynopsisBuilder::new(end - start, cols)?;
        let mut served = vec![0.0f64; cols];
        let mut cursor = 0usize; // bucket is sorted by (local row, col)
        for (local, i) in (start..end).enumerate() {
            kernels::reconstruct_row(svd.u().row(i), svd.lambda(), &vt, &mut served);
            let local_u = u64_from_usize(local);
            while let Some(&(r, c, dv)) = bucket.get(cursor) {
                if r != local_u {
                    break;
                }
                let j = usize_from_u64(c, "delta column")?;
                if let Some(slot) = served.get_mut(j) {
                    *slot += dv;
                }
                cursor += 1;
            }
            synopsis.push_row(&served)?;
        }
        std::fs::write(sdir.join(SYNOPSIS_FILE), synopsis.finish()?.encode())?;
        entries.push(ShardEntry {
            start,
            end,
            deltas: bucket.len(),
            crc_u: 0,
            crc_deltas: 0,
            crc_synopsis: None, // pinned from the staged file at commit
            append_sse: None,
        });
    }
    Ok(entries)
}

/// Reject shard ranges that are not contiguous, ascending, non-empty,
/// and covering exactly `0..rows`.
fn check_ranges(ranges: &[(usize, usize)], rows: usize) -> Result<()> {
    let mut next = 0usize;
    for &(start, end) in ranges {
        if start != next || end <= start {
            return Err(AtsError::InvalidArgument(format!(
                "shard range {start}..{end} breaks coverage at row {next}"
            )));
        }
        next = end;
    }
    if next != rows {
        return Err(AtsError::InvalidArgument(format!(
            "shard ranges cover 0..{next}, store has {rows} rows"
        )));
    }
    Ok(())
}

/// A shard's disk-backed serving state, instantiated on first touch.
struct ShardState {
    /// The shard's `U` partition behind its own LRU buffer pool.
    u: CachedFile,
    /// The shard's delta table, keyed by *shard-local* rows.
    deltas: DeltaStore,
}

/// One row-range shard: its manifest entry, its directory, and its
/// lazily-created serving state.
struct ShardHandle {
    entry: ShardEntry,
    dir: PathBuf,
    state: OnceLock<ShardState>,
}

/// An opened sharded store: shared `V`/`Λ` and every delta CRC verified
/// up front, per-shard `U` pagers and delta tables instantiated lazily.
///
/// Serving preserves the §4.1 invariant *per shard*: a cold cell query
/// touches exactly one page of the owning shard's `U` file — other
/// shards are not opened, let alone read.
pub struct ShardedStore {
    manifest: ShardedManifest,
    v: Matrix,
    /// `Vᵀ` as a `k × M` component panel (derived from `v` at open),
    /// feeding the blocked reconstruction kernels on the row and batch
    /// paths. Not part of the on-disk format.
    vt: VPanel,
    lambda: Vec<f64>,
    shards: Vec<ShardHandle>,
    /// Per-shard zone-map synopses, in shard order, loaded eagerly at
    /// open (they are small — 32 bytes per tile). `None` for shards
    /// whose manifest entry pins no synopsis (legacy stores): queries
    /// over those fall back to the exact scan.
    synopses: Vec<Option<ShardSynopsis>>,
    /// Buffer-pool page budget per shard (the open-time budget split
    /// evenly, minimum one page).
    pool_pages: usize,
}

impl ShardedStore {
    /// Open a sharded (v3) store directory — or a legacy v2 directory,
    /// which is served as a single shard with identical semantics.
    ///
    /// The manifest is parsed and every component file verified against
    /// its recorded CRC before anything is served; the shared factors
    /// are loaded and cross-checked against the manifest's dimensions.
    /// `pool_pages` bounds the *total* `U` buffer-pool budget; each of
    /// `R` shards gets `max(pool_pages / R, 1)` pages.
    pub fn open(dir: impl AsRef<Path>, pool_pages: usize) -> Result<Self> {
        let dir = dir.as_ref();
        let manifest = validate_sharded_store_dir(dir)?;
        if manifest.method != "svd" && manifest.method != "svdd" {
            return Err(AtsError::Corrupt(format!(
                "manifest method {:?} is not a disk-servable store (svd|svdd)",
                manifest.method
            )));
        }
        let v = read_matrix(dir.join("v.atsm"))?;
        let lambda_m = read_matrix(dir.join("lambda.atsm"))?;
        if lambda_m.rows() != 1 {
            return Err(AtsError::Corrupt(format!(
                "lambda.atsm must be a single row, has {}",
                lambda_m.rows()
            )));
        }
        let lambda = lambda_m.row(0).to_vec();
        let k = lambda.len();
        if v.cols() != k {
            return Err(AtsError::Corrupt(format!(
                "inconsistent store: V has {} columns, Λ has {k}",
                v.cols()
            )));
        }
        if manifest.cols != v.rows() || manifest.k != k {
            return Err(AtsError::Corrupt(format!(
                "manifest says {}x{} k={}, factors hold cols={} k={k}",
                manifest.rows,
                manifest.cols,
                manifest.k,
                v.rows()
            )));
        }
        let shards: Vec<ShardHandle> = manifest
            .shards
            .iter()
            .enumerate()
            .map(|(i, entry)| ShardHandle {
                entry: entry.clone(),
                dir: manifest.shard_dir(dir, i),
                state: OnceLock::new(),
            })
            .collect();
        // Synopses are tiny and gate query planning, so unlike the `U`
        // pagers they load eagerly: decode every manifest-pinned
        // synopsis now (bytes already CRC-verified above) and
        // cross-check its geometry against the shard it claims to
        // describe.
        let mut synopses = Vec::with_capacity(shards.len());
        for (i, h) in shards.iter().enumerate() {
            synopses.push(match h.entry.crc_synopsis {
                Some(_) => {
                    let syn = ShardSynopsis::decode(&std::fs::read(h.dir.join(SYNOPSIS_FILE))?)?;
                    if syn.rows() != h.entry.rows() || syn.cols() != manifest.cols {
                        return Err(AtsError::Corrupt(format!(
                            "shard {i}: synopsis covers {}x{}, shard holds {} rows of {} columns",
                            syn.rows(),
                            syn.cols(),
                            h.entry.rows(),
                            manifest.cols
                        )));
                    }
                    Some(syn)
                }
                None => None,
            });
        }
        let pool_pages = (pool_pages / shards.len().max(1)).max(1);
        let vt = VPanel::from_v(&v);
        Ok(ShardedStore {
            manifest,
            v,
            vt,
            lambda,
            shards,
            synopses,
            pool_pages,
        })
    }

    /// Number of retained principal components.
    pub fn k(&self) -> usize {
        self.lambda.len()
    }

    /// Total number of stored deltas across all shards.
    pub fn num_deltas(&self) -> usize {
        self.manifest.deltas
    }

    /// Whether the delta tables carry the §4.2 Bloom filter.
    pub fn has_bloom(&self) -> bool {
        self.manifest.bloom
    }

    /// Number of row-range shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The validated manifest this store was opened from.
    pub fn manifest(&self) -> &ShardedManifest {
        &self.manifest
    }

    /// Per-shard I/O counters of the `U` page caches, in shard order.
    /// Shards never touched report all-zero counters — lazily-opened
    /// shards that stayed cold did no I/O, and the snapshot proves it.
    pub fn shard_io_snapshots(&self) -> Vec<IoSnapshot> {
        self.shards
            .iter()
            .map(|h| {
                h.state
                    .get()
                    .map_or_else(IoSnapshot::default, |s| s.u.stats().snapshot())
            })
            .collect()
    }

    /// All shards' I/O counters rolled into one snapshot.
    pub fn io_snapshot(&self) -> IoSnapshot {
        let mut total = IoSnapshot::default();
        for s in self.shard_io_snapshots() {
            total.merge(&s);
        }
        total
    }

    /// The shard's serving state, instantiating it on first touch.
    /// Errors are returned (not cached), so a transient failure does not
    /// poison the shard.
    fn state(&self, index: usize) -> Result<&ShardState> {
        let h = self
            .shards
            .get(index)
            .ok_or_else(|| AtsError::oob("shard", index, self.shards.len()))?;
        if let Some(s) = h.state.get() {
            return Ok(s);
        }
        let loaded = self.load_shard(h, index)?;
        Ok(h.state.get_or_init(|| loaded))
    }

    fn load_shard(&self, h: &ShardHandle, index: usize) -> Result<ShardState> {
        let stats = IoStats::new();
        let u_file = Arc::new(MatrixFile::open_with_stats(
            h.dir.join("u.atsm"),
            Arc::clone(&stats),
        )?);
        if u_file.rows() != h.entry.rows() || u_file.cols() != self.k() {
            return Err(AtsError::Corrupt(format!(
                "shard {index}: manifest says {} rows k={}, u.atsm holds {}x{}",
                h.entry.rows(),
                self.k(),
                u_file.rows(),
                u_file.cols()
            )));
        }
        let deltas = read_deltas(
            &h.dir.join("deltas.bin"),
            self.manifest.cols,
            self.manifest.bloom,
        )?;
        if deltas.len() != h.entry.deltas {
            return Err(AtsError::Corrupt(format!(
                "shard {index}: manifest says {} deltas, file holds {}",
                h.entry.deltas,
                deltas.len()
            )));
        }
        // Delta rows are shard-local; one out of range means the file
        // belongs to a different geometry.
        let local_rows = h.entry.rows();
        if deltas.iter().any(|(r, _, _)| r >= local_rows) {
            return Err(AtsError::Corrupt(format!(
                "shard {index}: delta row beyond the shard's {local_rows} rows"
            )));
        }
        Ok(ShardState {
            u: CachedFile::row_aligned(u_file, self.pool_pages),
            deltas,
        })
    }

    /// Locate the shard owning absolute row `i` and its local row index.
    fn route(&self, i: usize) -> Result<(usize, usize)> {
        let idx = self
            .manifest
            .shard_of_row(i)
            .ok_or_else(|| AtsError::oob("row", i, self.manifest.rows))?;
        let start = self
            .shards
            .get(idx)
            .map(|h| h.entry.start)
            .unwrap_or_default();
        Ok((idx, i - start))
    }
}

impl CompressedMatrix for ShardedStore {
    fn rows(&self) -> usize {
        self.manifest.rows
    }

    fn cols(&self) -> usize {
        self.manifest.cols
    }

    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        if j >= self.manifest.cols {
            return Err(AtsError::oob("column", j, self.manifest.cols));
        }
        let (idx, local) = self.route(i)?;
        let st = self.state(idx)?;
        let mut u_row = vec![0.0f64; self.k()];
        st.u.read_row_into(local, &mut u_row)?; // ≤ 1 disk access, owning shard only
        let base: f64 = self
            .lambda
            .iter()
            .zip(&u_row)
            .zip(self.v.row(j))
            .map(|((&lam, &uv), &vv)| lam * uv * vv)
            .sum();
        Ok(match st.deltas.probe(local, j) {
            Some(d) => base + d,
            None => base,
        })
    }

    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if out.len() != self.manifest.cols {
            return Err(AtsError::dims(
                "ShardedStore::row_into",
                (1, out.len()),
                (1, self.manifest.cols),
            ));
        }
        let (idx, local) = self.route(i)?;
        let st = self.state(idx)?;
        let mut u_row = vec![0.0f64; self.k()];
        st.u.read_row_into(local, &mut u_row)?;
        // Panel kernel: k sequential axpy sweeps over Vᵀ component slices,
        // bitwise identical to the scalar per-column dot it replaced.
        kernels::reconstruct_row(&u_row, &self.lambda, &self.vt, out);
        for (j, o) in out.iter_mut().enumerate() {
            if let Some(d) = st.deltas.probe(local, j) {
                *o += d;
            }
        }
        Ok(())
    }

    /// Many cells of one row for one `U`-row fetch: the whole group routes
    /// to the owning shard once, reads that shard's `U` row through the
    /// pool once (one logical read; one cold page on the row-aligned
    /// layout), and reconstructs every requested column with the fused
    /// multi-cell kernel before probing deltas in request order.
    fn cells_in_row(&self, i: usize, cols: &[usize], out: &mut [f64]) -> Result<()> {
        if out.len() != cols.len() {
            return Err(AtsError::dims(
                "ShardedStore::cells_in_row",
                (1, out.len()),
                (1, cols.len()),
            ));
        }
        let m = self.manifest.cols;
        for &j in cols {
            if j >= m {
                return Err(AtsError::oob("column", j, m));
            }
        }
        let (idx, local) = self.route(i)?;
        let st = self.state(idx)?;
        let k = self.k();
        let mut u_row = vec![0.0f64; k];
        st.u.read_row_into(local, &mut u_row)?; // the one fetch for the whole group
        let mut coef = vec![0.0f64; k];
        kernels::fuse_coefficients(&self.lambda, &u_row, &mut coef);
        kernels::reconstruct_cells(&coef, &self.v, cols, out)?;
        for (&j, o) in cols.iter().zip(out.iter_mut()) {
            if let Some(d) = st.deltas.probe(local, j) {
                *o += d;
            }
        }
        Ok(())
    }

    /// Blocked multi-row reconstruction across shards: every row is routed
    /// (and thereby validated) before any I/O, then each block of
    /// [`kernels::BLOCK_ROWS`] rows fetches its `U` vectors through the
    /// owning shards' pools — one logical read per row — and reconstructs
    /// through the shared `Vᵀ` panel, with delta patches applied per row
    /// in ascending column order.
    fn rows_into(&self, rows: &[usize], out: &mut [f64]) -> Result<()> {
        let m = self.manifest.cols;
        if out.len() != rows.len() * m {
            return Err(AtsError::dims(
                "ShardedStore::rows_into",
                (rows.len(), m),
                (out.len() / m.max(1), m),
            ));
        }
        let mut routed = Vec::with_capacity(rows.len());
        for &i in rows {
            routed.push(self.route(i)?);
        }
        if m == 0 {
            return Ok(());
        }
        let k = self.k();
        if k == 0 {
            out.fill(0.0);
        }
        let mut ublock = vec![0.0f64; kernels::BLOCK_ROWS * k];
        for (rchunk, ochunk) in routed
            .chunks(kernels::BLOCK_ROWS)
            .zip(out.chunks_mut(kernels::BLOCK_ROWS * m))
        {
            if k > 0 {
                let ub = ublock
                    .get_mut(..rchunk.len() * k)
                    .ok_or_else(|| AtsError::internal("rows_into U scratch undersized"))?;
                for (&(idx, local), udst) in rchunk.iter().zip(ub.chunks_mut(k)) {
                    self.state(idx)?.u.read_row_into(local, udst)?;
                }
                kernels::reconstruct_rows(ub, &self.lambda, &self.vt, ochunk)?;
            }
            for (&(idx, local), orow) in rchunk.iter().zip(ochunk.chunks_mut(m)) {
                let st = self.state(idx)?;
                for (j, o) in orow.iter_mut().enumerate() {
                    if let Some(d) = st.deltas.probe(local, j) {
                        *o += d;
                    }
                }
            }
        }
        Ok(())
    }

    fn storage_bytes(&self) -> usize {
        (self.manifest.rows * self.k() + self.k() + self.manifest.cols * self.k())
            * BYTES_PER_NUMBER
            + self.manifest.deltas * DELTA_BYTES
    }

    fn method_name(&self) -> &'static str {
        if self.manifest.method == "svd" {
            "disk-svd"
        } else {
            "disk-svdd"
        }
    }

    fn shard_starts(&self) -> Vec<usize> {
        self.shards.iter().map(|h| h.entry.start).collect()
    }

    fn shard_synopsis(&self, shard: usize) -> Option<&ShardSynopsis> {
        self.synopses.get(shard).and_then(Option::as_ref)
    }
}

/// What [`append_rows`] did: which shard the batch landed in, how many
/// rows it holds, and the exact reconstruction SSE of those rows under
/// the frozen global factors (also recorded in the manifest).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendReport {
    /// Index of the freshly-created shard.
    pub shard_index: usize,
    /// Rows appended.
    pub rows: usize,
    /// Sum of squared reconstruction errors of the appended rows under
    /// the frozen `V`/`Λ` (they carry no deltas).
    pub sse: f64,
}

/// Append a batch of new sequences to an existing sharded (v3) store
/// on disk, without rebuilding: the rows are projected onto the frozen
/// global `V`/`Λ` (`U_new = X_new · V · Λ⁻¹`, the §3.3 reconstruction
/// identity run forward) and land in a fresh shard whose manifest entry
/// records the batch's exact reconstruction SSE.
///
/// Crash-safe: the shard directory is staged hidden, fsynced, and
/// renamed in *before* the manifest is atomically replaced — until the
/// new manifest is in place the store opens exactly as before, and an
/// interrupted append leaves at worst an unreferenced orphan directory.
///
/// Legacy v2 directories are refused ([`AtsError::InvalidArgument`]):
/// re-save the store in the sharded layout first. Pass a [`GramCache`]
/// to keep the §1 single-pass rebuild path warm — the batch is folded
/// into the cache after the store is durable.
pub fn append_rows<S: RowSource + ?Sized>(
    dir: impl AsRef<Path>,
    batch: &S,
    threads: usize,
    cache: Option<&mut GramCache>,
) -> Result<AppendReport> {
    let dir = dir.as_ref();
    let manifest = validate_sharded_store_dir(dir)?;
    if manifest.source_version != SHARDED_STORE_VERSION {
        return Err(AtsError::InvalidArgument(
            "cannot append to a legacy (v2) store directory: open and re-save it \
             in the sharded (v3) layout first"
                .into(),
        ));
    }
    if batch.cols() != manifest.cols {
        return Err(AtsError::dims(
            "append_rows",
            (batch.rows(), batch.cols()),
            (batch.rows(), manifest.cols),
        ));
    }
    let v = read_matrix(dir.join("v.atsm"))?;
    let lambda_m = read_matrix(dir.join("lambda.atsm"))?;
    if lambda_m.rows() != 1 || lambda_m.cols() != manifest.k || v.cols() != manifest.k {
        return Err(AtsError::Corrupt(format!(
            "factors disagree with manifest: V is {}x{}, Λ is {}x{}, manifest k={}",
            v.rows(),
            v.cols(),
            lambda_m.rows(),
            lambda_m.cols(),
            manifest.k
        )));
    }
    let lambda = lambda_m.row(0).to_vec();
    let (u_new, sse) = project_frozen(batch, &v, &lambda)?;

    let index = manifest.shards.len();
    let start = manifest.rows;
    let end = start
        .checked_add(batch.rows())
        .ok_or_else(|| AtsError::InvalidArgument("appended row count overflows".into()))?;

    // Stage the new shard hidden, make it durable, then rename it in.
    let final_name = shard_dir_name(index);
    let staged = dir.join(format!(".{final_name}.tmp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&staged);
    std::fs::create_dir_all(&staged)?;
    let mut w = MatrixFileWriter::create(staged.join("u.atsm"), manifest.k)?;
    for i in 0..u_new.rows() {
        w.append_row(u_new.row(i))?;
    }
    w.finish()?;
    std::fs::write(
        staged.join("deltas.bin"),
        encode_deltas(u64_from_usize(manifest.cols), &[]),
    )?;
    // The fresh shard gets its synopsis too: appended rows serve as
    // reconstructions under the frozen factors with no deltas, so the
    // tiles bound exactly what queries will see.
    let vt = VPanel::from_v(&v);
    let mut synopsis = SynopsisBuilder::new(u_new.rows(), manifest.cols)?;
    let mut served = vec![0.0f64; manifest.cols];
    for i in 0..u_new.rows() {
        kernels::reconstruct_row(u_new.row(i), &lambda, &vt, &mut served);
        synopsis.push_row(&served)?;
    }
    std::fs::write(staged.join(SYNOPSIS_FILE), synopsis.finish()?.encode())?;
    sync_path(&staged.join("u.atsm"))?;
    sync_path(&staged.join("deltas.bin"))?;
    sync_path(&staged.join(SYNOPSIS_FILE))?;
    sync_path(&staged)?;
    let target = dir.join(&final_name);
    if target.exists() {
        // Orphan from a previous crashed append — the manifest does not
        // reference it, so it is dead weight, not data.
        std::fs::remove_dir_all(&target)?;
    }
    std::fs::rename(&staged, &target)?;
    sync_path(dir)?;

    // Publish: extend the manifest and replace it atomically.
    let mut next = manifest;
    next.rows = end;
    next.shards.push(ShardEntry {
        start,
        end,
        deltas: 0,
        crc_u: file_crc(target.join("u.atsm"))?,
        crc_deltas: file_crc(target.join("deltas.bin"))?,
        crc_synopsis: Some(file_crc(target.join(SYNOPSIS_FILE))?),
        append_sse: Some(sse),
    });
    let tmp_manifest = dir.join(format!(".manifest.tmp-{}", std::process::id()));
    std::fs::write(&tmp_manifest, next.encode())?;
    sync_path(&tmp_manifest)?;
    std::fs::rename(&tmp_manifest, dir.join(MANIFEST_FILE))?;
    sync_path(dir)?;

    if let Some(cache) = cache {
        cache.ingest(batch, threads)?;
    }
    Ok(AppendReport {
        shard_index: index,
        rows: batch.rows(),
        sse,
    })
}

/// Flush a file or directory to stable storage.
fn sync_path(path: &Path) -> Result<()> {
    std::fs::File::open(path)?.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{save_svdd, DiskStore};
    use ats_common::TestDir;
    use ats_compress::{shard_ranges, SpaceBudget, SvddCompressed, SvddOptions};

    /// The interior-mutability audit behind the `ats serve` daemon, as a
    /// compile-time fact: the opened store (lazy `OnceLock` shard states,
    /// mutex-guarded page pools, atomic I/O counters) is `Send + Sync`,
    /// so one `Arc<ShardedStore>` may back every connection thread.
    #[test]
    fn sharded_store_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedStore>();
        assert_send_sync::<std::sync::Arc<ShardedStore>>();
    }

    fn spiky(n: usize, m: usize) -> Matrix {
        let mut x = Matrix::from_fn(n, m, |i, j| {
            ((i % 4) + 1) as f64 * if j % 7 < 5 { 3.0 } else { 0.5 }
        });
        x[(3, 2)] += 500.0;
        x[(n - 1, m - 1)] += 300.0;
        x
    }

    fn svdd_sharded(x: &Matrix, pct: f64, r: usize) -> SvddCompressed {
        let ranges = shard_ranges(x.rows(), r);
        SvddCompressed::compress_sharded(
            x,
            &SvddOptions::new(SpaceBudget::from_percent(pct)),
            &ranges,
        )
        .unwrap()
    }

    #[test]
    fn sharded_roundtrip_bit_identical() {
        let x = spiky(203, 17);
        let svdd = svdd_sharded(&x, 15.0, 3);
        let ranges = shard_ranges(203, 3);
        let tmp = TestDir::new("ats-shard");
        let dir = tmp.file("rt");
        save_sharded(&dir, svdd.svd(), Some(svdd.deltas()), "svdd", &ranges).unwrap();
        let store = ShardedStore::open(&dir, 64).unwrap();
        assert_eq!(store.shard_count(), 3);
        assert_eq!(store.rows(), 203);
        assert_eq!(store.cols(), 17);
        assert_eq!(store.k(), svdd.k_opt());
        assert_eq!(store.num_deltas(), svdd.num_deltas());
        assert_eq!(store.storage_bytes(), svdd.storage_bytes());
        assert_eq!(
            store.shard_starts(),
            ranges.iter().map(|r| r.0).collect::<Vec<_>>()
        );
        for i in (0..203).step_by(7) {
            for j in 0..17 {
                assert_eq!(
                    store.cell(i, j).unwrap(),
                    svdd.cell(i, j).unwrap(),
                    "({i},{j}) must reconstruct exactly"
                );
            }
        }
        let mut row = vec![0.0; 17];
        store.row_into(100, &mut row).unwrap();
        for (j, &got) in row.iter().enumerate() {
            assert_eq!(got, store.cell(100, j).unwrap());
        }
    }

    #[test]
    fn v2_store_opens_as_single_shard() {
        let x = spiky(120, 11);
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(20.0)))
            .unwrap();
        let tmp = TestDir::new("ats-shard");
        let dir = tmp.file("v2");
        save_svdd(&dir, &svdd).unwrap(); // legacy v2 writer
        let legacy = DiskStore::open(&dir, 32).unwrap();
        let store = ShardedStore::open(&dir, 32).unwrap();
        assert_eq!(store.shard_count(), 1);
        assert_eq!(store.shard_starts(), vec![0]);
        assert_eq!(store.manifest().source_version, 2);
        assert_eq!(store.storage_bytes(), legacy.storage_bytes());
        for i in (0..120).step_by(11) {
            for j in 0..11 {
                assert_eq!(store.cell(i, j).unwrap(), legacy.cell(i, j).unwrap());
            }
        }
    }

    #[test]
    fn per_shard_one_disk_access_and_cold_shards_untouched() {
        let x = spiky(256, 13);
        let svdd = svdd_sharded(&x, 15.0, 4);
        let ranges = shard_ranges(256, 4);
        let tmp = TestDir::new("ats-shard");
        let dir = tmp.file("1io");
        save_sharded(&dir, svdd.svd(), Some(svdd.deltas()), "svdd", &ranges).unwrap();
        let store = ShardedStore::open(&dir, 256).unwrap();
        // Query 10 distinct rows of shard 1 only, all cold.
        let (s1_start, s1_end) = ranges[1];
        for i in s1_start..(s1_start + 10).min(s1_end) {
            store.cell(i, 3).unwrap();
        }
        let per_shard = store.shard_io_snapshots();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard[1].physical_reads, 10, "one access per cold row");
        for (idx, snap) in per_shard.iter().enumerate() {
            if idx != 1 {
                assert_eq!(snap.physical_reads, 0, "shard {idx} must stay cold");
                assert_eq!(snap.logical_reads, 0);
            }
        }
        // Re-read the same rows: hits, no new physical I/O anywhere.
        for i in s1_start..(s1_start + 10).min(s1_end) {
            store.cell(i, 5).unwrap();
        }
        let rolled = store.io_snapshot();
        assert_eq!(rolled.physical_reads, 10);
        assert_eq!(rolled.cache_hits, 10);
    }

    /// The emitted synopses describe the *served* values exactly: every
    /// cell the store reconstructs (deltas included) falls inside its
    /// tile's bounds, and per-tile sum/count match a naive recount.
    #[test]
    fn synopses_bound_served_values_exactly() {
        let x = spiky(96, 21); // spikes land as deltas under svdd
        let svdd = svdd_sharded(&x, 15.0, 3);
        let ranges = shard_ranges(96, 3);
        let tmp = TestDir::new("ats-shard");
        let dir = tmp.file("syn");
        save_sharded(&dir, svdd.svd(), Some(svdd.deltas()), "svdd", &ranges).unwrap();
        let store = ShardedStore::open(&dir, 64).unwrap();
        for (s, &(start, end)) in ranges.iter().enumerate() {
            let syn = store.shard_synopsis(s).expect("fresh store has synopses");
            assert_eq!((syn.rows(), syn.cols()), (end - start, 21));
            let mut row = vec![0.0; 21];
            let mut sums = vec![0.0f64; syn.tile_rows() * syn.tile_cols()];
            let mut counts = vec![0u64; sums.len()];
            for local in 0..(end - start) {
                store.row_into(start + local, &mut row).unwrap();
                for (j, &v) in row.iter().enumerate() {
                    let (tr, tc) = (local / 8, j / 16);
                    let t = syn.tile(tr, tc).unwrap();
                    assert!(
                        t.min <= v && v <= t.max,
                        "cell {v} outside [{}, {}]",
                        t.min,
                        t.max
                    );
                    sums[tr * syn.tile_cols() + tc] += v;
                    counts[tr * syn.tile_cols() + tc] += 1;
                }
            }
            for (i, t) in syn.tiles().iter().enumerate() {
                assert_eq!(t.sum.to_bits(), sums[i].to_bits(), "tile {i} sum");
                assert_eq!(t.count, counts[i], "tile {i} count");
            }
        }
        // A v2 store opens with no synopses and serves unchanged.
        let v2 = tmp.file("v2");
        save_svdd(&v2, &svdd).unwrap();
        let legacy = ShardedStore::open(&v2, 16).unwrap();
        assert!(legacy.shard_synopsis(0).is_none());
        assert!(legacy.shard_synopsis(7).is_none());
    }

    #[test]
    fn append_emits_synopsis_for_the_fresh_shard() {
        let x = spiky(80, 12);
        let svdd = svdd_sharded(&x, 20.0, 2);
        let tmp = TestDir::new("ats-shard");
        let dir = tmp.file("append-syn");
        save_sharded(
            &dir,
            svdd.svd(),
            Some(svdd.deltas()),
            "svdd",
            &shard_ranges(80, 2),
        )
        .unwrap();
        let batch = Matrix::from_fn(10, 12, |i, j| (i as f64) - (j as f64) * 0.25);
        append_rows(&dir, &batch, 1, None).unwrap();
        let store = ShardedStore::open(&dir, 32).unwrap();
        let syn = store
            .shard_synopsis(2)
            .expect("appended shard has a synopsis");
        assert_eq!((syn.rows(), syn.cols()), (10, 12));
        assert!(store.manifest().shards[2].crc_synopsis.is_some());
        let mut row = vec![0.0; 12];
        for local in 0..10 {
            store.row_into(80 + local, &mut row).unwrap();
            for (j, &v) in row.iter().enumerate() {
                let t = syn.tile(local / 8, j / 16).unwrap();
                assert!(t.min <= v && v <= t.max);
            }
        }
    }

    #[test]
    fn save_sharded_rejects_bad_ranges() {
        let x = spiky(96, 9);
        let svdd = svdd_sharded(&x, 20.0, 1);
        let tmp = TestDir::new("ats-shard");
        for ranges in [
            vec![(0usize, 40usize), (50, 96)], // gap
            vec![(0, 96), (96, 96)],           // empty shard
            vec![(0, 40)],                     // short coverage
        ] {
            let err = save_sharded(
                &tmp.file("bad"),
                svdd.svd(),
                Some(svdd.deltas()),
                "svdd",
                &ranges,
            )
            .unwrap_err();
            assert!(matches!(err, AtsError::InvalidArgument(_)), "{err}");
        }
    }

    #[test]
    fn append_lands_in_fresh_shard_with_tracked_sse() {
        let x = spiky(160, 14);
        let svdd = svdd_sharded(&x, 20.0, 2);
        let ranges = shard_ranges(160, 2);
        let tmp = TestDir::new("ats-shard");
        let dir = tmp.file("append");
        save_sharded(&dir, svdd.svd(), Some(svdd.deltas()), "svdd", &ranges).unwrap();

        let batch = Matrix::from_fn(24, 14, |i, j| ((i % 3) + 2) as f64 * ((j % 5) as f64 + 0.5));
        let mut cache = GramCache::from_source(&x, 1).unwrap();
        let report = append_rows(&dir, &batch, 1, Some(&mut cache)).unwrap();
        assert_eq!(report.shard_index, 2);
        assert_eq!(report.rows, 24);
        assert!(report.sse.is_finite() && report.sse > 0.0);
        assert_eq!(cache.rows_seen(), 160 + 24);

        let store = ShardedStore::open(&dir, 64).unwrap();
        assert_eq!(store.rows(), 184);
        assert_eq!(store.shard_count(), 3);
        let entry = &store.manifest().shards[2];
        assert_eq!((entry.start, entry.end, entry.deltas), (160, 184, 0));
        // The SSE survives the manifest round trip bit-exactly.
        assert_eq!(
            entry.append_sse.map(f64::to_bits),
            Some(report.sse.to_bits())
        );
        // Old rows serve exactly as before the append.
        for i in (0..160).step_by(17) {
            assert_eq!(store.cell(i, 6).unwrap(), svdd.cell(i, 6).unwrap());
        }
        // Appended rows reconstruct under the frozen factors.
        let (u_new, _) = project_frozen(&batch, svdd.svd().v(), svdd.svd().lambda()).unwrap();
        let mut expect = vec![0.0; 14];
        svdd.svd().reconstruct_row_from_u(u_new.row(5), &mut expect);
        let mut got = vec![0.0; 14];
        store.row_into(165, &mut got).unwrap();
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // A second append stacks another shard.
        let report2 = append_rows(&dir, &batch, 1, None).unwrap();
        assert_eq!(report2.shard_index, 3);
        assert_eq!(ShardedStore::open(&dir, 64).unwrap().rows(), 208);
    }

    #[test]
    fn append_refuses_v2_and_bad_shapes() {
        let x = spiky(80, 10);
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(20.0)))
            .unwrap();
        let tmp = TestDir::new("ats-shard");
        let dir = tmp.file("v2only");
        save_svdd(&dir, &svdd).unwrap();
        let batch = Matrix::from_fn(8, 10, |i, j| (i + j) as f64);
        let err = append_rows(&dir, &batch, 1, None).unwrap_err();
        assert!(matches!(err, AtsError::InvalidArgument(_)), "{err}");
        assert!(err.to_string().contains("v2"), "{err}");

        // Re-save as v3, then a wrong-width batch is refused.
        let ranges = shard_ranges(80, 2);
        save_sharded(&dir, svdd.svd(), Some(svdd.deltas()), "svdd", &ranges).unwrap();
        let wrong = Matrix::from_fn(8, 9, |i, j| (i + j) as f64);
        assert!(append_rows(&dir, &wrong, 1, None).is_err());
        // And the store is unchanged by the refused appends.
        assert_eq!(ShardedStore::open(&dir, 16).unwrap().rows(), 80);
    }

    #[test]
    fn interrupted_append_leaves_store_intact() {
        let x = spiky(100, 12);
        let svdd = svdd_sharded(&x, 20.0, 2);
        let ranges = shard_ranges(100, 2);
        let tmp = TestDir::new("ats-shard");
        let dir = tmp.file("crash");
        save_sharded(&dir, svdd.svd(), Some(svdd.deltas()), "svdd", &ranges).unwrap();
        let baseline = ShardedStore::open(&dir, 16).unwrap().cell(50, 4).unwrap();

        // Crash after the shard dir was renamed in but before the
        // manifest was replaced: an unreferenced orphan, store serves old
        // data, and a retried append succeeds over the orphan.
        let orphan = dir.join(shard_dir_name(2));
        std::fs::create_dir(&orphan).unwrap();
        std::fs::write(orphan.join("u.atsm"), b"half-written").unwrap();
        let store = ShardedStore::open(&dir, 16).unwrap();
        assert_eq!(store.rows(), 100);
        assert_eq!(store.cell(50, 4).unwrap(), baseline);
        let batch = Matrix::from_fn(8, 12, |i, j| (i * j) as f64 + 1.0);
        let report = append_rows(&dir, &batch, 1, None).unwrap();
        assert_eq!(report.shard_index, 2);
        assert_eq!(ShardedStore::open(&dir, 16).unwrap().rows(), 108);

        // Crash with a stale staged temp dir lying around: ignored and
        // cleaned by the next append at that index.
        let staged = dir.join(format!(".{}.tmp-999", shard_dir_name(3)));
        std::fs::create_dir(&staged).unwrap();
        std::fs::write(staged.join("u.atsm"), b"junk").unwrap();
        assert_eq!(ShardedStore::open(&dir, 16).unwrap().rows(), 108);
    }
}
