//! [`SequenceStore`]: build once, query forever.
//!
//! The full lifecycle is first-class: [`StoreBuilder::build`] compresses,
//! [`SequenceStore::save`] persists the SVD/SVDD methods crash-safely to
//! a store directory (format v2, see [`crate::disk`]), and
//! [`SequenceStore::open`] serves the saved store back with `U` paged
//! from disk — without callers reaching into `ats_core::disk` internals.

use crate::shard;
use crate::timeblock::{
    self, reconstruction_sse, time_block_ranges, BlockToSave, MemTimeBlocked, TimeBlockedStore,
};
use ats_common::{AtsError, Result};
use ats_compress::cluster::{ClusterAlgo, ClusterCompressed};
use ats_compress::dct::DctCompressed;
use ats_compress::method::block_budget;
use ats_compress::sampling::SampleCompressed;
use ats_compress::{
    shard_ranges, CompressedMatrix, SpaceBudget, SvdCompressed, SvddCompressed, SvddOptions,
};
use ats_linalg::Matrix;
use ats_query::engine::{AggregateFn, QueryEngine};
use ats_query::metrics::{error_report, ErrorReport};
use ats_query::selection::Selection;
use ats_storage::ColumnSlice;
use ats_storage::RowSource;
use std::path::Path;
use std::sync::Arc;

/// The compression method behind a [`SequenceStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Plain truncated SVD (§3.4).
    Svd,
    /// SVD with deltas — the paper's proposal (§4.2). Default.
    Svdd,
    /// Row-wise DCT (§2.3 baseline).
    Dct,
    /// Hierarchical complete-linkage clustering (§2.2 baseline;
    /// `O(N²)`, in-memory only).
    ClusterHierarchical,
    /// K-means clustering (the scalable clustering variant).
    ClusterKMeans,
    /// Uniform row sampling (§5.2 baseline; aggregates only).
    Sampling,
}

impl Method {
    /// Short method name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Svd => "svd",
            Method::Svdd => "svdd",
            Method::Dct => "dct",
            Method::ClusterHierarchical => "cluster-hier",
            Method::ClusterKMeans => "cluster-kmeans",
            Method::Sampling => "sampling",
        }
    }
}

/// Builder for [`SequenceStore`].
#[derive(Debug, Clone)]
pub struct StoreBuilder {
    method: Method,
    budget: SpaceBudget,
    threads: usize,
    with_bloom: bool,
    seed: u64,
    shards: usize,
    time_blocks: usize,
}

impl StoreBuilder {
    /// Compression method (default [`Method::Svdd`]).
    pub fn method(mut self, m: Method) -> Self {
        self.method = m;
        self
    }

    /// Space budget (default 10%).
    pub fn budget(mut self, b: SpaceBudget) -> Self {
        self.budget = b;
        self
    }

    /// Worker threads (default 1). One knob for both sides: the build's
    /// streaming passes and the store's aggregate query scans.
    pub fn threads(mut self, t: usize) -> Self {
        self.threads = t.max(1);
        self
    }

    /// Attach a Bloom filter to the SVDD delta table (default true).
    pub fn bloom(mut self, on: bool) -> Self {
        self.with_bloom = on;
        self
    }

    /// Seed for randomized methods (k-means, sampling).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Number of row-range shards for the SVD/SVDD build passes and the
    /// saved store layout (default 1, or the `ATS_TEST_SHARDS`
    /// environment variable when set). Sharding never changes results:
    /// pass 1 folds per-block partial Grams in a fixed global order and
    /// pass 2 merges per-shard outlier heaps globally, so `k_opt`, the
    /// delta set, and every reconstructed cell are bit-identical to the
    /// single-shard build. Non-SVD methods ignore the knob.
    pub fn shards(mut self, r: usize) -> Self {
        self.shards = r.max(1);
        self
    }

    /// Number of time blocks the column axis is partitioned into
    /// (default 1, or the `ATS_TEST_TBLOCKS` environment variable when
    /// set). With `B > 1` the SVD/SVDD build runs once per column block
    /// — each block gets its own `(U_b, Λ_b, V_b)` and delta set under a
    /// per-block budget ([`ats_compress::method::block_budget`]) — and
    /// [`SequenceStore::save`] writes the time-blocked (v4) layout.
    /// Unlike row sharding this IS a semantics knob: per-block
    /// decompositions differ from the global one (that is the point —
    /// time-range queries touch only overlapping blocks). A query
    /// confined to one block answers bitwise what a standalone store
    /// built over that column slice would. `B = 1` is exactly the
    /// single-decomposition build and the v3 layout. Non-SVD methods
    /// ignore the knob.
    pub fn time_blocks(mut self, b: usize) -> Self {
        self.time_blocks = b.max(1);
        self
    }

    /// Per-block SVD/SVDD builds over column slices of the source, one
    /// [`ColumnSlice`] pass set per block, assembled into a routing
    /// [`MemTimeBlocked`] grid.
    fn build_blocks<S: RowSource + ?Sized>(
        &self,
        source: &S,
        col_ranges: &[(usize, usize)],
    ) -> Result<(Arc<dyn CompressedMatrix>, Persist)> {
        let row_ranges = shard_ranges(source.rows(), self.shards);
        let mut arcs: Vec<Arc<dyn CompressedMatrix>> = Vec::new();
        let mut blocks = Vec::new();
        for &(c0, c1) in col_ranges {
            let slice = ColumnSlice::new(source, c0, c1)?;
            let budget = block_budget(self.budget, source.rows(), c1 - c0);
            match self.method {
                Method::Svd => {
                    let c = Arc::new(SvdCompressed::compress_budget_sharded(
                        &slice,
                        budget,
                        self.threads,
                        &row_ranges,
                    )?);
                    let sse = reconstruction_sse(&slice, c.as_ref())?;
                    blocks.push(PersistBlock {
                        data: BlockPersist::Svd(Arc::clone(&c)),
                        sse,
                    });
                    arcs.push(c);
                }
                Method::Svdd => {
                    let mut opts = SvddOptions::new(budget);
                    opts.threads = self.threads;
                    opts.with_bloom = self.with_bloom;
                    let c = Arc::new(SvddCompressed::compress_sharded(
                        &slice,
                        &opts,
                        &row_ranges,
                    )?);
                    let sse = reconstruction_sse(&slice, c.as_ref())?;
                    blocks.push(PersistBlock {
                        data: BlockPersist::Svdd(Arc::clone(&c)),
                        sse,
                    });
                    arcs.push(c);
                }
                other => {
                    return Err(AtsError::internal(format!(
                        "time-blocked build reached for {other:?}"
                    )))
                }
            }
        }
        Ok((
            Arc::new(MemTimeBlocked::new(arcs)?),
            Persist::Blocks(blocks),
        ))
    }

    /// Compress from any [`RowSource`] (disk file or in-memory matrix).
    ///
    /// Clustering methods need the data in memory and will materialize
    /// the source (they are the paper's non-streaming baseline).
    pub fn build<S: RowSource + ?Sized>(self, source: &S) -> Result<SequenceStore> {
        if matches!(self.method, Method::Svd | Method::Svdd) {
            let col_ranges = time_block_ranges(source.cols(), self.time_blocks);
            if col_ranges.len() > 1 {
                let (compressed, persist) = self.build_blocks(source, &col_ranges)?;
                return Ok(SequenceStore {
                    compressed,
                    method: self.method,
                    threads: self.threads,
                    shards: self.shards,
                    time_blocks: col_ranges.len(),
                    persist,
                });
            }
        }
        let mut persist = Persist::None;
        let ranges = shard_ranges(source.rows(), self.shards);
        let compressed: Arc<dyn CompressedMatrix> = match self.method {
            Method::Svd => {
                let c = Arc::new(SvdCompressed::compress_budget_sharded(
                    source,
                    self.budget,
                    self.threads,
                    &ranges,
                )?);
                persist = Persist::Svd(Arc::clone(&c));
                c
            }
            Method::Svdd => {
                let mut opts = SvddOptions::new(self.budget);
                opts.threads = self.threads;
                opts.with_bloom = self.with_bloom;
                let c = Arc::new(SvddCompressed::compress_sharded(source, &opts, &ranges)?);
                persist = Persist::Svdd(Arc::clone(&c));
                c
            }
            Method::Dct => Arc::new(DctCompressed::compress_budget(source, self.budget)?),
            Method::ClusterHierarchical => {
                let x = source.to_matrix()?;
                Arc::new(ClusterCompressed::compress_budget(
                    &x,
                    self.budget,
                    ClusterAlgo::Hierarchical,
                )?)
            }
            Method::ClusterKMeans => {
                let x = source.to_matrix()?;
                Arc::new(ClusterCompressed::compress_budget(
                    &x,
                    self.budget,
                    ClusterAlgo::KMeans {
                        max_iters: 50,
                        seed: self.seed,
                    },
                )?)
            }
            Method::Sampling => Arc::new(SampleCompressed::compress_budget(
                source,
                self.budget,
                self.seed,
            )?),
        };
        Ok(SequenceStore {
            compressed,
            method: self.method,
            threads: self.threads,
            shards: self.shards,
            time_blocks: 1,
            persist,
        })
    }
}

/// Keeps a concrete handle to the persistable methods so
/// [`SequenceStore::save`] can reach the SVD parts without downcasting.
enum Persist {
    Svd(Arc<SvdCompressed>),
    Svdd(Arc<SvddCompressed>),
    /// One decomposition per time block, with build-time SSEs —
    /// persists as the time-blocked (v4) layout.
    Blocks(Vec<PersistBlock>),
    None,
}

/// One freshly-built time block awaiting persistence.
struct PersistBlock {
    data: BlockPersist,
    /// Build-time reconstruction SSE of the block against its source
    /// slice (after delta patching for SVDD).
    sse: f64,
}

enum BlockPersist {
    Svd(Arc<SvdCompressed>),
    Svdd(Arc<SvddCompressed>),
}

/// A compressed, queryable time-sequence store.
pub struct SequenceStore {
    compressed: Arc<dyn CompressedMatrix>,
    method: Method,
    threads: usize,
    shards: usize,
    time_blocks: usize,
    persist: Persist,
}

impl SequenceStore {
    /// Start building a store. The default shard count is 1 unless the
    /// `ATS_TEST_SHARDS` environment variable names another, and the
    /// default time-block count is 1 unless `ATS_TEST_TBLOCKS` names
    /// another (the CI hooks that rerun the whole suite in sharded and
    /// time-blocked modes).
    pub fn builder() -> StoreBuilder {
        let env_knob = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .unwrap_or(1)
                .max(1)
        };
        StoreBuilder {
            method: Method::Svdd,
            budget: SpaceBudget::from_percent(10.0),
            threads: 1,
            with_bloom: true,
            seed: 0,
            shards: env_knob("ATS_TEST_SHARDS"),
            time_blocks: env_knob("ATS_TEST_TBLOCKS"),
        }
    }

    /// Persist this store into `dir` as a crash-safe sharded (v3) store
    /// directory (temp-dir staging + fsync + atomic rename; see
    /// [`crate::shard`]). The on-disk shard ranges are the same
    /// block-aligned ranges the build passes ran over
    /// ([`StoreBuilder::shards`]).
    ///
    /// Only the disk-servable methods persist: [`Method::Svd`] and
    /// [`Method::Svdd`]. Other methods return
    /// [`AtsError::InvalidArgument`].
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<()> {
        match &self.persist {
            Persist::Svd(c) => shard::save_sharded(
                dir.as_ref(),
                c,
                None,
                "svd",
                &shard_ranges(c.rows(), self.shards),
            ),
            Persist::Svdd(c) => shard::save_sharded(
                dir.as_ref(),
                c.svd(),
                Some(c.deltas()),
                "svdd",
                &shard_ranges(c.svd().rows(), self.shards),
            ),
            Persist::Blocks(blocks) => {
                let to_save: Vec<BlockToSave<'_>> = blocks
                    .iter()
                    .map(|b| match &b.data {
                        BlockPersist::Svd(c) => BlockToSave {
                            svd: c,
                            deltas: None,
                            sse: b.sse,
                        },
                        BlockPersist::Svdd(c) => BlockToSave {
                            svd: c.svd(),
                            deltas: Some(c.deltas()),
                            sse: b.sse,
                        },
                    })
                    .collect();
                timeblock::save_timeblocked(
                    dir.as_ref(),
                    &to_save,
                    self.method.name(),
                    &shard_ranges(self.rows(), self.shards),
                )
            }
            Persist::None => Err(AtsError::InvalidArgument(format!(
                "cannot save a {:?} store: only freshly built svd/svdd stores persist \
                 (an opened store is already on disk)",
                self.method
            ))),
        }
    }

    /// Open a store directory written by [`SequenceStore::save`] — the
    /// time-blocked v4 layout, the sharded v3 layout, or a legacy v2
    /// directory; the latter two are served as a single time block with
    /// identical semantics.
    ///
    /// Every manifest is validated and every component checksummed
    /// before anything is served; `pool_pages` bounds the total `U`
    /// buffer-pool budget, split across blocks and then shards. The
    /// returned store answers the same cell/sequence/aggregate queries
    /// as the in-memory one — `U` rows are paged in from the owning
    /// block's owning shard on demand, and range queries touch only the
    /// time blocks overlapping the range.
    pub fn open(dir: impl AsRef<Path>, pool_pages: usize) -> Result<SequenceStore> {
        let store = TimeBlockedStore::open(dir, pool_pages)?;
        let method = match store.manifest().method.as_str() {
            "svd" => Method::Svd,
            "svdd" => Method::Svdd,
            other => {
                return Err(AtsError::Corrupt(format!(
                    "manifest method {other:?} is not openable as a SequenceStore"
                )))
            }
        };
        let shards = store.block(0)?.shard_count();
        let time_blocks = store.block_count();
        Ok(SequenceStore {
            compressed: Arc::new(store),
            method,
            threads: 1,
            shards,
            time_blocks,
            persist: Persist::None,
        })
    }

    /// The method used.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Number of sequences (`N`).
    pub fn rows(&self) -> usize {
        self.compressed.rows()
    }

    /// Sequence length (`M`).
    pub fn cols(&self) -> usize {
        self.compressed.cols()
    }

    /// Cell query: reconstruct the value at `(i, j)`.
    pub fn cell(&self, i: usize, j: usize) -> Result<f64> {
        self.compressed.cell(i, j)
    }

    /// Reconstruct a full sequence.
    pub fn sequence(&self, i: usize) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.cols()];
        self.compressed.row_into(i, &mut out)?;
        Ok(out)
    }

    /// Worker threads used for aggregate query scans (the builder's
    /// [`StoreBuilder::threads`] knob).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of row-range shards (the builder's
    /// [`StoreBuilder::shards`] knob; for an opened store, the shard
    /// count recorded in the manifest).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of time blocks (the builder's
    /// [`StoreBuilder::time_blocks`] knob; for an opened store, the
    /// block count recorded in the manifest).
    pub fn time_blocks(&self) -> usize {
        self.time_blocks
    }

    /// A `'static`, `Send + Sync`, `Clone` query engine sharing this
    /// store's compressed matrix (and, for an opened store, its page
    /// pool). This is the handle a long-lived server hands to its
    /// connection threads; it answers bitwise identically to the
    /// borrowed per-call engines the convenience methods below build.
    pub fn engine(&self) -> QueryEngine<'static> {
        QueryEngine::shared(Arc::clone(&self.compressed)).with_threads(self.threads)
    }

    /// Aggregate query over a selection, scanned with the store's
    /// configured thread count.
    pub fn aggregate(&self, sel: &Selection, f: AggregateFn) -> Result<f64> {
        self.engine().aggregate(sel, f)
    }

    /// Predicate-filtered aggregate (`where value > x`) over a
    /// selection, scanned with the store's configured thread count.
    /// Over a store carrying zone-map synopses, tiles the predicate's
    /// bounds prove all-out are skipped without reconstruction — the
    /// answer is bitwise identical either way.
    pub fn aggregate_where(
        &self,
        sel: &Selection,
        f: AggregateFn,
        pred: &ats_query::Predicate,
    ) -> Result<f64> {
        self.engine().aggregate_where(sel, f, pred)
    }

    /// Every aggregate function at once, over a single selection scan.
    pub fn aggregate_all(&self, sel: &Selection) -> Result<ats_query::engine::AggregateRow> {
        self.engine().aggregate_all(sel)
    }

    /// Batched cell queries: answers arrive in request order, computed
    /// with one `U`-row fetch per distinct requested row (the requests
    /// are sorted by `(row, column)` internally and grouped per row —
    /// see [`ats_query::BatchRequest`]), scanned with the store's
    /// configured thread count. Bitwise identical to calling
    /// [`SequenceStore::cell`] per request.
    pub fn batch_cells(&self, cells: &[(usize, usize)]) -> Result<Vec<f64>> {
        let req = ats_query::BatchRequest::new(cells.to_vec());
        Ok(self.engine().batch_cells(&req)?.into_values())
    }

    /// Compressed size in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.compressed.storage_bytes()
    }

    /// Space ratio vs the uncompressed matrix (Eq. 9's `s`).
    pub fn space_ratio(&self) -> f64 {
        self.compressed.space_ratio()
    }

    /// Borrow the underlying compressed matrix (for the experiment
    /// harness and persistence helpers).
    pub fn compressed(&self) -> &dyn CompressedMatrix {
        self.compressed.as_ref()
    }

    /// Compare this store against the original data (one streaming pass).
    pub fn error_report(&self, original: &dyn RowSource) -> Result<ErrorReport> {
        error_report(original, self.compressed.as_ref())
    }

    /// Batched append (§1 assumes updates are rare and batched): rebuild
    /// the store from a source containing old + new rows, keeping method
    /// and budget semantics. Returns the fresh store.
    pub fn rebuild_with<S: RowSource + ?Sized>(
        &self,
        source: &S,
        budget: SpaceBudget,
        threads: usize,
    ) -> Result<SequenceStore> {
        SequenceStore::builder()
            .method(self.method)
            .budget(budget)
            .threads(threads)
            .shards(self.shards)
            .time_blocks(self.time_blocks)
            .build(source)
    }
}

/// Convenience: compress an in-memory matrix with defaults (SVDD @ 10%).
pub fn compress_default(x: &Matrix) -> Result<SequenceStore> {
    SequenceStore::builder().build(x)
}

/// Convenience: pick a method by name (for CLI-ish examples and the
/// experiment harness).
pub fn method_by_name(name: &str) -> Result<Method> {
    Ok(match name {
        "svd" => Method::Svd,
        "svdd" => Method::Svdd,
        "dct" => Method::Dct,
        "hc" | "cluster" | "cluster-hier" | "hierarchical" => Method::ClusterHierarchical,
        "kmeans" | "cluster-kmeans" => Method::ClusterKMeans,
        "sampling" | "sample" => Method::Sampling,
        other => {
            return Err(AtsError::InvalidArgument(format!(
                "unknown method {other:?} (try svd, svdd, dct, hc, kmeans, sampling)"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_query::selection::Axis;

    fn structured(n: usize, m: usize) -> Matrix {
        Matrix::from_fn(n, m, |i, j| {
            ((i % 5) + 1) as f64 * if j % 7 < 5 { 2.0 } else { 0.2 }
        })
    }

    #[test]
    fn builds_every_method() {
        let x = structured(300, 28);
        for method in [
            Method::Svd,
            Method::Svdd,
            Method::Dct,
            Method::ClusterHierarchical,
            Method::ClusterKMeans,
            Method::Sampling,
        ] {
            let store = SequenceStore::builder()
                .method(method)
                .budget(SpaceBudget::from_percent(25.0))
                .build(&x)
                .unwrap_or_else(|e| panic!("{method:?}: {e}"));
            assert_eq!(store.rows(), 300);
            assert_eq!(store.cols(), 28);
            assert!(store.space_ratio() <= 0.25 + 1e-9, "{method:?}");
            store.cell(0, 0).unwrap();
        }
    }

    #[test]
    fn svdd_default_reconstructs_structured_data() {
        let x = structured(300, 28);
        let store = compress_default(&x).unwrap();
        assert_eq!(store.method(), Method::Svdd);
        let r = store.error_report(&x).unwrap();
        assert!(r.rmspe < 0.05, "rmspe {}", r.rmspe);
    }

    #[test]
    fn aggregate_queries_close_to_truth() {
        let x = structured(300, 28);
        let store = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(15.0))
            .build(&x)
            .unwrap();
        let sel = Selection {
            rows: Axis::Range(10, 200),
            cols: Axis::Range(0, 14),
        };
        let approx = store.aggregate(&sel, AggregateFn::Avg).unwrap();
        let exact = ats_query::engine::aggregate_exact(&x, &sel, AggregateFn::Avg).unwrap();
        assert!(
            (approx - exact).abs() / exact.abs() < 0.01,
            "{approx} vs {exact}"
        );
    }

    #[test]
    fn sequence_reconstruction() {
        let x = structured(100, 14);
        let store = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(30.0))
            .build(&x)
            .unwrap();
        let seq = store.sequence(42).unwrap();
        assert_eq!(seq.len(), 14);
        for (a, b) in seq.iter().zip(x.row(42)) {
            assert!((a - b).abs() < 0.3);
        }
        assert!(store.sequence(100).is_err());
    }

    #[test]
    fn threads_knob_covers_build_and_query() {
        // One builder knob drives both the parallel build passes and the
        // threaded aggregate scans; results stay within float-merge noise
        // of the single-threaded store.
        let x = structured(300, 28);
        let budget = SpaceBudget::from_percent(20.0);
        let serial = SequenceStore::builder().budget(budget).build(&x).unwrap();
        let par = SequenceStore::builder()
            .budget(budget)
            .threads(4)
            .build(&x)
            .unwrap();
        assert_eq!(serial.threads(), 1);
        assert_eq!(par.threads(), 4);
        let sel = Selection {
            rows: Axis::Range(5, 280),
            cols: Axis::Range(0, 28),
        };
        for f in AggregateFn::ALL {
            let a = serial.aggregate(&sel, f).unwrap();
            let b = par.aggregate(&sel, f).unwrap();
            assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0), "{a} vs {b}");
        }
        let all = par.aggregate_all(&sel).unwrap();
        assert_eq!(all.count, 275 * 28);
    }

    #[test]
    fn method_names_parse() {
        assert_eq!(method_by_name("svdd").unwrap(), Method::Svdd);
        assert_eq!(method_by_name("hc").unwrap(), Method::ClusterHierarchical);
        assert!(method_by_name("zstd").is_err());
        assert_eq!(Method::Svdd.name(), "svdd");
    }

    #[test]
    fn rebuild_with_appended_rows() {
        let x = structured(100, 14);
        let store = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(20.0))
            .build(&x)
            .unwrap();
        let bigger = structured(150, 14);
        let rebuilt = store
            .rebuild_with(&bigger, SpaceBudget::from_percent(20.0), 1)
            .unwrap();
        assert_eq!(rebuilt.rows(), 150);
        assert_eq!(rebuilt.method(), Method::Svdd);
    }

    #[test]
    fn save_open_lifecycle_svdd_and_svd() {
        let x = structured(150, 21);
        for method in [Method::Svdd, Method::Svd] {
            let built = SequenceStore::builder()
                .method(method)
                .budget(SpaceBudget::from_percent(20.0))
                .build(&x)
                .unwrap();
            let tmp = ats_common::TestDir::new("ats-store-lifecycle");
            let dir = tmp.file("store");
            built.save(&dir).unwrap();
            let opened = SequenceStore::open(&dir, 64).unwrap();
            assert_eq!(opened.method(), method);
            assert_eq!(opened.rows(), 150);
            assert_eq!(opened.cols(), 21);
            assert_eq!(opened.storage_bytes(), built.storage_bytes());
            // Bit-identical serving: same U/V/Λ bytes, same arithmetic.
            for i in (0..150).step_by(13) {
                for j in 0..21 {
                    assert_eq!(
                        opened.cell(i, j).unwrap(),
                        built.cell(i, j).unwrap(),
                        "{method:?} ({i},{j})"
                    );
                }
            }
            // Aggregates work against the disk-backed store too.
            let sel = Selection {
                rows: Axis::Range(0, 100),
                cols: Axis::Range(0, 10),
            };
            let a = built.aggregate(&sel, AggregateFn::Sum).unwrap();
            let b = opened.aggregate(&sel, AggregateFn::Sum).unwrap();
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1.0));
        }
    }

    #[test]
    fn save_rejects_non_persistable_methods() {
        let x = structured(60, 14);
        let store = SequenceStore::builder()
            .method(Method::Dct)
            .budget(SpaceBudget::from_percent(30.0))
            .build(&x)
            .unwrap();
        let tmp = ats_common::TestDir::new("ats-store-lifecycle");
        let err = store.save(tmp.file("nope")).unwrap_err();
        assert!(matches!(err, AtsError::InvalidArgument(_)), "{err}");
        assert!(!tmp.file("nope").exists());
    }

    #[test]
    fn open_missing_store_errors() {
        let tmp = ats_common::TestDir::new("ats-store-lifecycle");
        assert!(SequenceStore::open(tmp.file("absent"), 8).is_err());
    }

    #[test]
    fn bloom_knob_survives_save_open() {
        let x = structured(100, 14);
        for bloom in [false, true] {
            let built = SequenceStore::builder()
                .bloom(bloom)
                .budget(SpaceBudget::from_percent(15.0))
                .build(&x)
                .unwrap();
            let tmp = ats_common::TestDir::new("ats-store-lifecycle");
            let dir = tmp.file("store");
            built.save(&dir).unwrap();
            let opened = SequenceStore::open(&dir, 16).unwrap();
            assert_eq!(
                opened.storage_bytes(),
                built.storage_bytes(),
                "bloom={bloom}"
            );
        }
    }

    #[test]
    fn sharded_build_equivalent_to_monolithic() {
        // The whole point of the sharded refactor: R is a layout knob,
        // not a semantics knob. shards(1) and shards(4) must agree on
        // k_opt, the delta set, and every reconstructed cell — bit for
        // bit — for both SVD and SVDD, in memory and through disk.
        let x = structured(300, 28);
        for method in [Method::Svd, Method::Svdd] {
            let mono = SequenceStore::builder()
                .method(method)
                .budget(SpaceBudget::from_percent(20.0))
                .shards(1)
                .build(&x)
                .unwrap();
            let sharded = SequenceStore::builder()
                .method(method)
                .budget(SpaceBudget::from_percent(20.0))
                .shards(4)
                .threads(3)
                .build(&x)
                .unwrap();
            // Same k and delta count fall out of equal storage bytes.
            assert_eq!(mono.storage_bytes(), sharded.storage_bytes(), "{method:?}");
            for i in 0..300 {
                for j in 0..28 {
                    assert_eq!(
                        mono.cell(i, j).unwrap(),
                        sharded.cell(i, j).unwrap(),
                        "{method:?} ({i},{j})"
                    );
                }
            }
            // And the two on-disk layouts serve identically.
            let tmp = ats_common::TestDir::new("ats-store-shardeq");
            let (d1, d4) = (tmp.file("r1"), tmp.file("r4"));
            mono.save(&d1).unwrap();
            sharded.save(&d4).unwrap();
            let o1 = SequenceStore::open(&d1, 64).unwrap();
            let o4 = SequenceStore::open(&d4, 64).unwrap();
            assert_eq!(o1.shards(), 1, "{method:?}");
            assert_eq!(o4.shards(), 4, "{method:?}");
            for i in (0..300).step_by(13) {
                for j in 0..28 {
                    assert_eq!(o1.cell(i, j).unwrap(), o4.cell(i, j).unwrap());
                    assert_eq!(o1.cell(i, j).unwrap(), mono.cell(i, j).unwrap());
                }
            }
        }
    }

    #[test]
    fn legacy_v2_store_opens_as_single_shard() {
        // A v2 directory written by the legacy writer is exactly a
        // one-shard v3 store: SequenceStore::open serves it unchanged.
        let x = structured(150, 21);
        let built = SequenceStore::builder()
            .budget(SpaceBudget::from_percent(20.0))
            .shards(1)
            .time_blocks(1) // the legacy writer predates time blocking
            .build(&x)
            .unwrap();
        let svdd = match &built.persist {
            Persist::Svdd(c) => Arc::clone(c),
            _ => unreachable!("default method is svdd"),
        };
        let tmp = ats_common::TestDir::new("ats-store-v2compat");
        let dir = tmp.file("legacy");
        crate::disk::save_svdd(&dir, &svdd).unwrap();
        let opened = SequenceStore::open(&dir, 64).unwrap();
        assert_eq!(opened.method(), Method::Svdd);
        assert_eq!(opened.shards(), 1);
        assert_eq!((opened.rows(), opened.cols()), (150, 21));
        assert_eq!(opened.storage_bytes(), built.storage_bytes());
        for i in (0..150).step_by(13) {
            for j in 0..21 {
                assert_eq!(opened.cell(i, j).unwrap(), built.cell(i, j).unwrap());
            }
        }
    }

    #[test]
    fn cluster_methods_have_distinct_names() {
        assert_eq!(Method::ClusterHierarchical.name(), "cluster-hier");
        assert_eq!(Method::ClusterKMeans.name(), "cluster-kmeans");
        // The printed names parse back to the right method.
        assert_eq!(
            method_by_name("cluster-hier").unwrap(),
            Method::ClusterHierarchical
        );
        assert_eq!(
            method_by_name("cluster-kmeans").unwrap(),
            Method::ClusterKMeans
        );
        // Legacy aliases keep working.
        assert_eq!(
            method_by_name("cluster").unwrap(),
            Method::ClusterHierarchical
        );
        assert_eq!(method_by_name("kmeans").unwrap(), Method::ClusterKMeans);
    }

    #[test]
    fn seeded_methods_deterministic() {
        let x = structured(120, 14);
        let a = SequenceStore::builder()
            .method(Method::Sampling)
            .budget(SpaceBudget::from_percent(20.0))
            .seed(5)
            .build(&x)
            .unwrap();
        let b = SequenceStore::builder()
            .method(Method::Sampling)
            .budget(SpaceBudget::from_percent(20.0))
            .seed(5)
            .build(&x)
            .unwrap();
        for i in (0..120).step_by(11) {
            assert_eq!(a.cell(i, 3).unwrap(), b.cell(i, 3).unwrap());
        }
    }
}
