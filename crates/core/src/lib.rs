//! # ats-core
//!
//! The public façade of `adhoc-ts` — a compressed, queryable store for
//! large time-sequence datasets, after Korn, Jagadish & Faloutsos
//! (SIGMOD 1997).
//!
//! - [`store`] — [`store::SequenceStore`]: pick a method and a space
//!   budget, compress a dataset, run cell and aggregate queries;
//! - [`disk`] — [`disk::DiskStore`]: the paper's serving architecture
//!   made literal. `V` and `Λ` are pinned in memory, rows of `U` live in
//!   a row-aligned matrix file behind an LRU buffer pool, and deltas sit
//!   in a hash table — so a cold cell query costs exactly **one disk
//!   access** (§4.1), which the tests verify by counting page fetches;
//! - [`viz`] — Appendix A: project every sequence onto the first two
//!   principal components for dataset visualization (the Fig. 11
//!   scatter plots), plus a terminal renderer used by the examples.
//!
//! ## Quickstart
//!
//! ```
//! use ats_core::store::{Method, SequenceStore};
//! use ats_compress::SpaceBudget;
//! use ats_linalg::Matrix;
//!
//! // 200 sequences of 64 points with strong weekly structure.
//! let data = Matrix::from_fn(200, 64, |i, j| {
//!     ((i % 5) + 1) as f64 * if j % 7 < 5 { 1.0 } else { 0.1 }
//! });
//! let store = SequenceStore::builder()
//!     .method(Method::Svdd)
//!     .budget(SpaceBudget::from_percent(10.0))
//!     .build(&data)
//!     .unwrap();
//! let v = store.cell(17, 3).unwrap();           // single-cell query
//! assert!((v - 3.0).abs() < 0.5);               // true value: (17%5+1)·1.0
//! assert!(store.space_ratio() <= 0.10 + 1e-9);  // fits the budget
//! ```

pub mod disk;
pub mod shard;
pub mod store;
pub mod timeblock;
pub mod viz;

pub use disk::DiskStore;
pub use shard::{append_rows, AppendReport, ShardedStore};
pub use store::{Method, SequenceStore};
pub use timeblock::{
    append_time_block, retrain_flags, time_block_ranges, MemTimeBlocked, TimeAppendReport,
    TimeBlockedStore, RETRAIN_SSE_FACTOR,
};
