//! Aggregate semantics over real compressed representations: §5.2's
//! observation that aggregation is *more* accurate than cell access,
//! checked per aggregate function.

use ats_compress::{SpaceBudget, SvddCompressed, SvddOptions};
use ats_data::{generate_phone, PhoneConfig};
use ats_query::engine::{aggregate_exact, AggregateFn, QueryEngine};
use ats_query::metrics::QueryError;
use ats_query::selection::{Axis, Selection};
use ats_query::workload::{random_aggregate_queries, WorkloadConfig};

fn setup() -> (ats_linalg::Matrix, SvddCompressed) {
    let d = generate_phone(&PhoneConfig {
        customers: 600,
        days: 84,
        ..PhoneConfig::default()
    });
    let x = d.into_matrix();
    let svdd =
        SvddCompressed::compress(&x, &SvddOptions::new(SpaceBudget::from_percent(10.0))).unwrap();
    (x, svdd)
}

#[test]
fn sum_and_avg_track_truth_closely() {
    let (x, svdd) = setup();
    let engine = QueryEngine::new(&svdd);
    let queries = random_aggregate_queries(
        600,
        84,
        &WorkloadConfig {
            queries: 20,
            ..Default::default()
        },
    )
    .unwrap();
    for (qi, q) in queries.iter().enumerate() {
        for f in [AggregateFn::Sum, AggregateFn::Avg] {
            let exact = aggregate_exact(&x, q, f).unwrap();
            let approx = engine.aggregate(q, f).unwrap();
            let e = QueryError::q_err(exact, approx);
            assert!(e < 0.10, "query {qi} {}: q_err {e}", f.name());
        }
    }
}

#[test]
fn count_is_always_exact() {
    let (x, svdd) = setup();
    let engine = QueryEngine::new(&svdd);
    let sel = Selection {
        rows: Axis::Range(3, 77),
        cols: Axis::set(vec![0, 5, 80]),
    };
    assert_eq!(
        engine.aggregate(&sel, AggregateFn::Count).unwrap(),
        aggregate_exact(&x, &sel, AggregateFn::Count).unwrap()
    );
}

#[test]
fn min_max_bounded_by_worst_cell_error() {
    let (x, svdd) = setup();
    let engine = QueryEngine::new(&svdd);
    let report = ats_query::metrics::error_report(&x, &svdd).unwrap();
    let sel = Selection {
        rows: Axis::Range(0, 600),
        cols: Axis::Range(0, 84),
    };
    for f in [AggregateFn::Min, AggregateFn::Max] {
        let exact = aggregate_exact(&x, &sel, f).unwrap();
        let approx = engine.aggregate(&sel, f).unwrap();
        // extreme statistics can each be off by at most the worst
        // single-cell reconstruction error
        assert!(
            (exact - approx).abs() <= report.max_abs_error + 1e-9,
            "{}: {exact} vs {approx} (worst cell {})",
            f.name(),
            report.max_abs_error
        );
    }
}

#[test]
fn stddev_reasonable() {
    let (x, svdd) = setup();
    let engine = QueryEngine::new(&svdd);
    let sel = Selection::all();
    let exact = aggregate_exact(&x, &sel, AggregateFn::StdDev).unwrap();
    let approx = engine.aggregate(&sel, AggregateFn::StdDev).unwrap();
    assert!(
        QueryError::q_err(exact, approx) < 0.05,
        "stddev: {exact} vs {approx}"
    );
}

#[test]
fn single_row_and_column_selections() {
    let (x, svdd) = setup();
    let engine = QueryEngine::new(&svdd);
    for sel in [
        Selection::row(42),
        Selection::col(17),
        Selection::cell(3, 3),
    ] {
        let exact = aggregate_exact(&x, &sel, AggregateFn::Sum).unwrap();
        let approx = engine.aggregate(&sel, AggregateFn::Sum).unwrap();
        // single rows/columns don't enjoy full cancellation, but must
        // stay within a loose relative band
        let denom = exact.abs().max(1.0);
        assert!(
            (exact - approx).abs() / denom < 0.5,
            "{sel:?}: {exact} vs {approx}"
        );
    }
}
