//! A tiny ad hoc query language.
//!
//! The paper's motivating interface is an analyst typing exploratory
//! queries ("what was the amount of sales to GHI Inc. on July 11?",
//! "find the total sales to business customers for the week ending July
//! 12"). This module gives the examples and the REPL a concrete syntax
//! for exactly the two query classes:
//!
//! ```text
//! cell <row> <col>                       -- single cell
//! <agg> rows <axis> cols <axis>          -- aggregate over a selection
//! <agg> rows <axis> in time [t1..t2]     -- range-restricted aggregate
//! <agg> rows <axis> [cols <axis>] where value <op> <x> [in time [t1..t2]]
//!                                        -- predicate-filtered aggregate
//!
//! <agg>  ::= sum | avg | count | min | max | stddev
//! <axis> ::= all | <a>..<b> | <i>,<i>,...
//! <op>   ::= > | >= | < | <= | =
//! ```
//!
//! Examples: `cell 42 17`, `avg rows 0..100 cols all`,
//! `sum rows 1,5,9 cols 0..7`, `avg rows all in time [30..90]`,
//! `count rows all where value > 450`,
//! `avg rows 0..2000 where value >= 1.5 in time [30..90]`.
//!
//! The `in time` form is sugar for a half-open column range written in
//! the paper's time-axis vocabulary; over a time-blocked (v4) store the
//! engine answers it by touching only the blocks the range overlaps.
//! The `where` form filters to cells whose reconstructed value
//! satisfies the predicate; over a store with zone-map synopses the
//! engine proves whole tiles in or out before reconstructing anything
//! (see [`crate::engine::QueryEngine::aggregate_where`]).

use crate::engine::AggregateFn;
use crate::predicate::{CmpOp, Predicate};
use crate::selection::{Axis, Selection};
use ats_common::{AtsError, Result};

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `cell i j`
    Cell(usize, usize),
    /// `<agg> rows … cols …`
    Aggregate(AggregateFn, Selection),
    /// `<agg> rows … [cols …] where value <op> <x> [in time […]]`
    AggregateWhere(AggregateFn, Selection, Predicate),
}

fn parse_usize(tok: &str, what: &str) -> Result<usize> {
    tok.parse::<usize>().map_err(|_| {
        AtsError::InvalidArgument(format!("expected a number for {what}, got {tok:?}"))
    })
}

fn parse_axis(tok: &str) -> Result<Axis> {
    if tok.eq_ignore_ascii_case("all") {
        return Ok(Axis::All);
    }
    if let Some((a, b)) = tok.split_once("..") {
        let start = parse_usize(a, "range start")?;
        let end = parse_usize(b, "range end")?;
        if start > end {
            return Err(AtsError::InvalidArgument(format!(
                "range {start}..{end} is backwards"
            )));
        }
        return Ok(Axis::Range(start, end));
    }
    let indices = tok
        .split(',')
        .map(|t| parse_usize(t.trim(), "index"))
        .collect::<Result<Vec<usize>>>()?;
    if indices.is_empty() {
        return Err(AtsError::InvalidArgument("empty index list".into()));
    }
    Ok(Axis::set(indices))
}

fn parse_agg(tok: &str) -> Result<AggregateFn> {
    Ok(match tok.to_ascii_lowercase().as_str() {
        "sum" => AggregateFn::Sum,
        "avg" | "mean" => AggregateFn::Avg,
        "count" => AggregateFn::Count,
        "min" => AggregateFn::Min,
        "max" => AggregateFn::Max,
        "stddev" | "std" => AggregateFn::StdDev,
        other => {
            return Err(AtsError::InvalidArgument(format!(
                "unknown aggregate {other:?} (try sum, avg, count, min, max, stddev)"
            )))
        }
    })
}

/// Parse a `[t1..t2]` time-range token into a half-open column range.
fn parse_time_range(tok: &str) -> Result<(usize, usize)> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| {
            AtsError::InvalidArgument(format!("time range must be written [t1..t2], got {tok:?}"))
        })?;
    let (a, b) = inner.split_once("..").ok_or_else(|| {
        AtsError::InvalidArgument(format!("time range must be written [t1..t2], got {tok:?}"))
    })?;
    let start = parse_usize(a, "time range start")?;
    let end = parse_usize(b, "time range end")?;
    if start > end {
        return Err(AtsError::InvalidArgument(format!(
            "time range [{start}..{end}] is backwards"
        )));
    }
    Ok((start, end))
}

/// Parse a `where value <op> <x>` tail into a [`Predicate`].
fn parse_predicate(op: &str, x: &str) -> Result<Predicate> {
    let value = x.parse::<f64>().map_err(|_| {
        AtsError::InvalidArgument(format!("expected a number for the threshold, got {x:?}"))
    })?;
    Predicate::new(CmpOp::parse(op)?, value)
}

/// Parse one query line.
pub fn parse_query(line: &str) -> Result<Query> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    match tokens.as_slice() {
        [] => Err(AtsError::InvalidArgument("empty query".into())),
        ["cell", i, j] => Ok(Query::Cell(
            parse_usize(i, "row")?,
            parse_usize(j, "column")?,
        )),
        [agg, "rows", rows, "cols", cols] => Ok(Query::Aggregate(
            parse_agg(agg)?,
            Selection {
                rows: parse_axis(rows)?,
                cols: parse_axis(cols)?,
            },
        )),
        [agg, "rows", rows, "in", "time", range] => {
            let (t1, t2) = parse_time_range(range)?;
            Ok(Query::Aggregate(
                parse_agg(agg)?,
                Selection::time_range(parse_axis(rows)?, t1, t2),
            ))
        }
        [agg, "rows", rows, "where", "value", op, x] => Ok(Query::AggregateWhere(
            parse_agg(agg)?,
            Selection {
                rows: parse_axis(rows)?,
                cols: Axis::All,
            },
            parse_predicate(op, x)?,
        )),
        [agg, "rows", rows, "cols", cols, "where", "value", op, x] => Ok(Query::AggregateWhere(
            parse_agg(agg)?,
            Selection {
                rows: parse_axis(rows)?,
                cols: parse_axis(cols)?,
            },
            parse_predicate(op, x)?,
        )),
        [agg, "rows", rows, "where", "value", op, x, "in", "time", range] => {
            let (t1, t2) = parse_time_range(range)?;
            Ok(Query::AggregateWhere(
                parse_agg(agg)?,
                Selection::time_range(parse_axis(rows)?, t1, t2),
                parse_predicate(op, x)?,
            ))
        }
        _ => Err(AtsError::InvalidArgument(format!(
            "cannot parse {line:?}; expected `cell <i> <j>`, `<agg> rows <axis> cols <axis>`, \
             `<agg> rows <axis> in time [t1..t2]`, or a `where value <op> <x>` form such as \
             `count rows all where value > 450`"
        ))),
    }
}

/// Parse and execute against a query engine.
pub fn run_query(engine: &crate::engine::QueryEngine<'_>, line: &str) -> Result<f64> {
    match parse_query(line)? {
        Query::Cell(i, j) => engine.cell(i, j),
        Query::Aggregate(f, sel) => engine.aggregate(&sel, f),
        Query::AggregateWhere(f, sel, pred) => engine.aggregate_where(&sel, f, &pred),
    }
}

/// Parse a batch file of cell queries into a [`crate::batch::BatchRequest`].
///
/// One cell per line — `cell <i> <j>` (the query-language spelling) or the
/// bare `<i> <j>` — in any order, duplicates allowed. Blank lines and
/// `#`-comments are skipped. Errors name the offending 1-based line.
pub fn parse_batch_file(text: &str) -> Result<crate::batch::BatchRequest> {
    let mut cells = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let cell = match tokens.as_slice() {
            ["cell", i, j] | [i, j] => (parse_usize(i, "row")?, parse_usize(j, "column")?),
            _ => {
                return Err(AtsError::InvalidArgument(format!(
                "batch file line {}: cannot parse {line:?}; expected `cell <i> <j>` or `<i> <j>`",
                ln + 1
            )))
            }
        };
        cells.push(cell);
    }
    Ok(crate::batch::BatchRequest::new(cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExactMatrix, QueryEngine};
    use ats_linalg::Matrix;

    #[test]
    fn parses_cell() {
        assert_eq!(parse_query("cell 3 7").unwrap(), Query::Cell(3, 7));
        assert!(parse_query("cell 3").is_err());
        assert!(parse_query("cell x 7").is_err());
    }

    #[test]
    fn parses_aggregates() {
        let q = parse_query("avg rows 0..10 cols all").unwrap();
        assert_eq!(
            q,
            Query::Aggregate(
                AggregateFn::Avg,
                Selection {
                    rows: Axis::Range(0, 10),
                    cols: Axis::All
                }
            )
        );
        let q = parse_query("SUM rows 5,1,5 cols 2..4").unwrap();
        assert_eq!(
            q,
            Query::Aggregate(
                AggregateFn::Sum,
                Selection {
                    rows: Axis::Set(vec![1, 5]),
                    cols: Axis::Range(2, 4)
                }
            )
        );
    }

    #[test]
    fn parses_time_range_aggregates() {
        let q = parse_query("avg rows all in time [30..90]").unwrap();
        assert_eq!(
            q,
            Query::Aggregate(
                AggregateFn::Avg,
                Selection {
                    rows: Axis::All,
                    cols: Axis::Range(30, 90)
                }
            )
        );
        let q = parse_query("SUM rows 0..5 in time [7..7]").unwrap();
        assert_eq!(
            q,
            Query::Aggregate(
                AggregateFn::Sum,
                Selection {
                    rows: Axis::Range(0, 5),
                    cols: Axis::Range(7, 7)
                }
            )
        );
        // Backwards, unbracketed, and malformed ranges are refused.
        let err = parse_query("avg rows all in time [9..2]").unwrap_err();
        assert!(err.to_string().contains("backwards"), "{err}");
        assert!(parse_query("avg rows all in time 2..9").is_err());
        assert!(parse_query("avg rows all in time [2..x]").is_err());
        assert!(parse_query("avg rows all in time [2]").is_err());
        assert!(parse_query("avg rows all in space [2..9]").is_err());
    }

    #[test]
    fn parses_where_aggregates() {
        let pred = Predicate::new(CmpOp::Gt, 450.0).unwrap();
        let q = parse_query("count rows all where value > 450").unwrap();
        assert_eq!(
            q,
            Query::AggregateWhere(
                AggregateFn::Count,
                Selection {
                    rows: Axis::All,
                    cols: Axis::All
                },
                pred
            )
        );
        let q = parse_query("avg rows 0..10 cols 2..4 where value <= -1.5").unwrap();
        assert_eq!(
            q,
            Query::AggregateWhere(
                AggregateFn::Avg,
                Selection {
                    rows: Axis::Range(0, 10),
                    cols: Axis::Range(2, 4)
                },
                Predicate::new(CmpOp::Le, -1.5).unwrap()
            )
        );
        let q = parse_query("sum rows 0..2000 where value >= 1.5 in time [30..90]").unwrap();
        assert_eq!(
            q,
            Query::AggregateWhere(
                AggregateFn::Sum,
                Selection::time_range(Axis::Range(0, 2000), 30, 90),
                Predicate::new(CmpOp::Ge, 1.5).unwrap()
            )
        );
        // Malformed where clauses are refused.
        assert!(parse_query("avg rows all where value ! 3").is_err());
        assert!(parse_query("avg rows all where value > x").is_err());
        assert!(parse_query("avg rows all where value > inf").is_err());
        assert!(parse_query("avg rows all where value > NaN").is_err());
        assert!(parse_query("avg rows all where cell > 3").is_err());
        assert!(parse_query("avg rows all where value >").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("").is_err());
        assert!(parse_query("median rows all cols all").is_err());
        assert!(parse_query("avg rows 5..2 cols all").is_err());
        assert!(parse_query("avg rows all").is_err());
        assert!(parse_query("avg cols all rows all").is_err());
        assert!(parse_query("avg rows , cols all").is_err());
    }

    #[test]
    fn executes_end_to_end() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let e = ExactMatrix(m);
        let engine = QueryEngine::new(&e);
        assert_eq!(run_query(&engine, "cell 1 0").unwrap(), 3.0);
        assert_eq!(run_query(&engine, "sum rows all cols all").unwrap(), 10.0);
        assert_eq!(run_query(&engine, "max rows 0..2 cols 1,1").unwrap(), 4.0);
        assert_eq!(run_query(&engine, "count rows all cols 0").unwrap(), 2.0);
        assert_eq!(
            run_query(&engine, "sum rows all cols all where value > 1.5").unwrap(),
            9.0
        );
        assert_eq!(
            run_query(&engine, "count rows all where value <= 2").unwrap(),
            2.0
        );
        assert!(run_query(&engine, "cell 9 9").is_err());
    }

    #[test]
    fn batch_file_parsing() {
        let req = parse_batch_file("# header\ncell 3 7\n\n  12 0\ncell 3 7\n").unwrap();
        assert_eq!(req.cells(), &[(3, 7), (12, 0), (3, 7)]);
        assert!(parse_batch_file("").unwrap().is_empty());
        let err = parse_batch_file("cell 1 2\nsum rows all cols all\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(parse_batch_file("cell x 2").is_err());
        assert!(parse_batch_file("1 2 3").is_err());
    }

    #[test]
    fn aliases() {
        assert!(matches!(
            parse_query("mean rows all cols all").unwrap(),
            Query::Aggregate(AggregateFn::Avg, _)
        ));
        assert!(matches!(
            parse_query("std rows all cols all").unwrap(),
            Query::Aggregate(AggregateFn::StdDev, _)
        ));
    }
}
