//! Error metrics: everything the paper's experiment section reports.
//!
//! - [`error_report`] computes, in one pass over the original data, the
//!   **RMSPE** of Def. 5.1 (root sum of squared errors normalized by the
//!   root sum of squared deviations from the dataset mean), the
//!   **worst-case absolute** cell error and its **normalized** form
//!   `|err|_max / σ` used in Tables 3–4 and Fig. 7, and the median /
//!   mean absolute error (the Fig. 8 discussion);
//! - [`error_spectrum`] returns the top-`n` absolute cell errors in
//!   descending order — the rank-ordered curve of Fig. 8;
//! - [`QueryError::q_err`] is Eq. 14:
//!   `|f(X) − f(X̂)| / |f(X)|` for an aggregate query.

use ats_common::{AtsError, OnlineStats, Result, TopK};
use ats_compress::CompressedMatrix;
use ats_storage::RowSource;

/// Reconstruction-error summary of one compressed representation against
/// the original data.
#[derive(Debug, Clone, Copy)]
pub struct ErrorReport {
    /// Def. 5.1: `sqrt(ΣΣ(x̂−x)²) / sqrt(ΣΣ(x−x̄)²)`.
    pub rmspe: f64,
    /// Largest absolute single-cell error.
    pub max_abs_error: f64,
    /// `max_abs_error / σ(X)` — the "normalized" worst case of Table 3.
    pub max_normalized_error: f64,
    /// Mean absolute cell error.
    pub mean_abs_error: f64,
    /// Standard deviation of the original data (the normalizer).
    pub data_std_dev: f64,
    /// Total squared error (numerator of RMSPE, squared).
    pub sse: f64,
    /// Number of cells compared.
    pub cells: u64,
}

/// Compare `compressed` against the original `source` in one streaming
/// pass. Errors if dimensions disagree.
pub fn error_report(
    source: &dyn RowSource,
    compressed: &dyn CompressedMatrix,
) -> Result<ErrorReport> {
    let (n, m) = (source.rows(), source.cols());
    if (n, m) != (compressed.rows(), compressed.cols()) {
        // The doc contract is "errors if dimensions disagree" — both
        // arguments arrive from outside (a data file and a store
        // directory), so a mismatch is the caller's input, not a bug.
        return Err(AtsError::dims(
            "error_report",
            (compressed.rows(), compressed.cols()),
            (n, m),
        ));
    }
    let mut data_stats = OnlineStats::new();
    let mut abs_err = OnlineStats::new();
    let mut sse = 0.0f64;
    let mut recon = vec![0.0f64; m];
    source.for_each_row(&mut |i, row| {
        compressed.row_into(i, &mut recon)?;
        for (&x, &r) in row.iter().zip(recon.iter()) {
            data_stats.push(x);
            let e = r - x;
            abs_err.push(e.abs());
            sse += e * e;
        }
        Ok(())
    })?;
    let denom = data_stats.sum_squared_deviations();
    let sd = data_stats.population_std_dev();
    Ok(ErrorReport {
        rmspe: if denom > 0.0 {
            (sse / denom).sqrt()
        } else {
            0.0
        },
        max_abs_error: if abs_err.count() == 0 {
            0.0
        } else {
            abs_err.max()
        },
        max_normalized_error: if sd > 0.0 && abs_err.count() > 0 {
            abs_err.max() / sd
        } else {
            0.0
        },
        mean_abs_error: abs_err.mean(),
        data_std_dev: sd,
        sse,
        cells: data_stats.count(),
    })
}

/// The `n` largest absolute cell errors, descending — Fig. 8's
/// rank-ordered error curve (the paper plots the first 50 000).
pub fn error_spectrum(
    source: &dyn RowSource,
    compressed: &dyn CompressedMatrix,
    n: usize,
) -> Result<Vec<f64>> {
    let m = source.cols();
    let mut top: TopK<()> = TopK::new(n);
    let mut recon = vec![0.0f64; m];
    source.for_each_row(&mut |i, row| {
        compressed.row_into(i, &mut recon)?;
        for (&x, &r) in row.iter().zip(recon.iter()) {
            let e = (r - x).abs();
            if top.would_accept(e) {
                top.offer(e, ());
            }
        }
        Ok(())
    })?;
    Ok(top.into_sorted_vec().into_iter().map(|(e, ())| e).collect())
}

/// Aggregate-query error bookkeeping (Eq. 14).
#[derive(Debug, Clone, Copy)]
pub struct QueryError;

impl QueryError {
    /// Eq. 14: `|f(X) − f(X̂)| / |f(X)|`. Returns the absolute error when
    /// the exact answer is ~0 (the relative form would blow up).
    pub fn q_err(exact: f64, approx: f64) -> f64 {
        let diff = (exact - approx).abs();
        if exact.abs() > 1e-12 {
            diff / exact.abs()
        } else {
            diff
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactMatrix;
    use ats_compress::{CompressedMatrix, SpaceBudget, SvdCompressed};
    use ats_linalg::Matrix;

    fn data() -> Matrix {
        Matrix::from_fn(40, 8, |i, j| ((i * 7 + j * 3) % 11) as f64 + 1.0)
    }

    #[test]
    fn exact_reconstruction_zero_error() {
        let x = data();
        let e = ExactMatrix(x.clone());
        let r = error_report(&x, &e).unwrap();
        assert_eq!(r.rmspe, 0.0);
        assert_eq!(r.max_abs_error, 0.0);
        assert_eq!(r.max_normalized_error, 0.0);
        assert_eq!(r.cells, 320);
        assert!(r.data_std_dev > 0.0);
    }

    #[test]
    fn rmspe_matches_definition() {
        let x = data();
        let c = SvdCompressed::compress(&x, 2, 1).unwrap();
        let r = error_report(&x, &c).unwrap();
        // recompute by hand
        let mean = x.mean();
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let xhat = c.cell(i, j).unwrap();
                num += (xhat - x[(i, j)]).powi(2);
                den += (x[(i, j)] - mean).powi(2);
            }
        }
        assert!((r.rmspe - (num / den).sqrt()).abs() < 1e-12);
        assert!(r.rmspe > 0.0);
    }

    #[test]
    fn max_normalized_is_max_over_sd() {
        let x = data();
        let c = SvdCompressed::compress(&x, 1, 1).unwrap();
        let r = error_report(&x, &c).unwrap();
        assert!((r.max_normalized_error - r.max_abs_error / r.data_std_dev).abs() < 1e-12);
    }

    #[test]
    fn spectrum_sorted_and_bounded() {
        let x = data();
        let c = SvdCompressed::compress(&x, 1, 1).unwrap();
        let spec = error_spectrum(&x, &c, 50).unwrap();
        assert_eq!(spec.len(), 50);
        for w in spec.windows(2) {
            assert!(w[0] >= w[1]);
        }
        let r = error_report(&x, &c).unwrap();
        assert!((spec[0] - r.max_abs_error).abs() < 1e-12);
    }

    #[test]
    fn spectrum_larger_than_cells_returns_all() {
        let x = Matrix::from_fn(3, 3, |i, j| (i + j) as f64);
        let c = ExactMatrix(x.clone());
        let spec = error_spectrum(&x, &c, 100).unwrap();
        assert_eq!(spec.len(), 9);
        assert!(spec.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn dimension_mismatch_is_an_error_not_a_panic() {
        // Regression: this used to be an `assert_eq!` that aborted the
        // process, contradicting the documented "errors if dimensions
        // disagree" contract.
        let x = data(); // 40 x 8
        let smaller = ExactMatrix(Matrix::from_fn(40, 7, |_, _| 0.0));
        let err = error_report(&x, &smaller).unwrap_err();
        assert!(
            matches!(err, ats_common::AtsError::DimensionMismatch { .. }),
            "{err}"
        );
        let fewer_rows = ExactMatrix(Matrix::from_fn(39, 8, |_, _| 0.0));
        assert!(error_report(&x, &fewer_rows).is_err());
    }

    #[test]
    fn q_err_relative_and_absolute() {
        assert!((QueryError::q_err(100.0, 99.0) - 0.01).abs() < 1e-12);
        assert!((QueryError::q_err(-50.0, -55.0) - 0.1).abs() < 1e-12);
        // near-zero exact: absolute error
        assert!((QueryError::q_err(0.0, 0.25) - 0.25).abs() < 1e-12);
        assert_eq!(QueryError::q_err(7.0, 7.0), 0.0);
    }

    #[test]
    fn svdd_report_better_than_svd() {
        use ats_compress::{SvddCompressed, SvddOptions};
        // spiky data at equal budget: SVDD's worst case must win
        let mut x = data();
        x[(5, 3)] += 200.0;
        x[(20, 1)] += 150.0;
        let b = SpaceBudget::from_percent(30.0);
        let svd = SvdCompressed::compress_budget(&x, b, 1).unwrap();
        let svdd = SvddCompressed::compress(&x, &SvddOptions::new(b)).unwrap();
        let r_svd = error_report(&x, &svd).unwrap();
        let r_svdd = error_report(&x, &svdd).unwrap();
        assert!(r_svdd.max_abs_error <= r_svd.max_abs_error);
        assert!(r_svdd.rmspe <= r_svd.rmspe * 1.0001);
    }
}
