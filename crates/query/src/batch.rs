//! Batched cell queries: many `(row, column)` lookups answered with one
//! `U`-row fetch per distinct row.
//!
//! Ad hoc workloads arrive as *batches* of cells, not single probes. The
//! per-cell path pays one `U`-row fetch (≈ 1 disk access on a paged store)
//! per cell even when many cells share a row. [`QueryEngine::batch_cells`]
//! sorts the requests by `(row, column)`, groups them into distinct-row
//! runs, and answers each run with a single
//! [`CompressedMatrix::cells_in_row`] call — so the I/O bound becomes one
//! `U`-row fetch per *distinct* requested row per shard (shard grouping
//! falls out of the row sort: shards are ascending row ranges). Results are
//! scattered back in request order and are bitwise identical to the
//! per-cell loop, whatever the request order, duplication, or thread count.

use crate::engine::QueryEngine;
use ats_common::{AtsError, Result};
use ats_compress::CompressedMatrix;

/// An ordered list of cell queries. Duplicates and any ordering are fine;
/// results come back in request order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchRequest {
    cells: Vec<(usize, usize)>,
}

impl BatchRequest {
    /// Wrap a list of `(row, column)` queries.
    pub fn new(cells: Vec<(usize, usize)>) -> Self {
        BatchRequest { cells }
    }

    /// The requested cells, in request order.
    pub fn cells(&self) -> &[(usize, usize)] {
        &self.cells
    }

    /// Number of requested cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the request is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// The answers to a [`BatchRequest`], aligned with the request order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchResult {
    values: Vec<f64>,
    distinct_rows: usize,
}

impl BatchResult {
    /// Reconstructed values, `values()[t]` answering `cells()[t]`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consume into the value vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Number of distinct rows the batch touched — the number of `U`-row
    /// fetches the execution performed (the batch I/O bound).
    pub fn distinct_rows(&self) -> usize {
        self.distinct_rows
    }
}

/// One distinct-row run of the sorted request order: `order[span]` all name
/// row `row`.
struct RowGroup {
    row: usize,
    span: std::ops::Range<usize>,
}

impl QueryEngine<'_> {
    /// Answer a batch of cell queries with one `U`-row fetch per distinct
    /// requested row.
    ///
    /// Every cell is validated up front, so an out-of-range request fails
    /// the whole batch before any reconstruction or I/O happens — no
    /// partial work. With `threads > 1` the distinct-row groups are split
    /// into contiguous chunks executed concurrently; each worker scatters
    /// into a private list merged back in chunk order, and since every
    /// output cell is computed independently, the values are identical to
    /// the serial execution bit for bit.
    pub fn batch_cells(&self, req: &BatchRequest) -> Result<BatchResult> {
        let (n, m) = (self.matrix().rows(), self.matrix().cols());
        for &(i, j) in req.cells() {
            if i >= n {
                return Err(AtsError::oob("row", i, n));
            }
            if j >= m {
                return Err(AtsError::oob("column", j, m));
            }
        }
        // Sort request positions by (row, column, position): rows cluster
        // into distinct-row runs (and shards, being ascending row ranges,
        // cluster too); columns sort within a row so delta probes walk in
        // column order; position last keeps the sort total and stable.
        let mut order: Vec<usize> = (0..req.len()).collect();
        let cells = req.cells();
        order.sort_unstable_by_key(|&t| {
            let (i, j) = cells[t];
            (i, j, t)
        });
        let mut groups: Vec<RowGroup> = Vec::new();
        for (pos, &t) in order.iter().enumerate() {
            let (row, _) = cells[t];
            match groups.last_mut() {
                Some(g) if g.row == row => g.span.end = pos + 1,
                _ => groups.push(RowGroup {
                    row,
                    span: pos..pos + 1,
                }),
            }
        }
        let mut values = vec![0.0f64; req.len()];
        if self.threads <= 1 || groups.len() < 2 * self.threads {
            let mut scatter = Vec::new();
            for g in &groups {
                run_group(self.matrix(), cells, &order, g, &mut scatter)?;
                for &(t, v) in &scatter {
                    values[t] = v;
                }
            }
        } else {
            let chunk = groups.len().div_ceil(self.threads);
            let parts: Vec<Result<Vec<(usize, f64)>>> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .chunks(chunk)
                    .map(|gs| {
                        let (order, cells) = (&order, cells);
                        scope.spawn(move |_| -> Result<Vec<(usize, f64)>> {
                            let mut out = Vec::new();
                            let mut scatter = Vec::new();
                            for g in gs {
                                run_group(self.matrix(), cells, order, g, &mut scatter)?;
                                out.extend_from_slice(&scatter);
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        Err(_) => Err(AtsError::internal("batch cell worker panicked")),
                    })
                    .collect()
            })
            .map_err(|_| AtsError::internal("batch cell thread scope panicked"))?;
            // Chunk-order merge; each (position, value) pair is disjoint,
            // so the scatter is deterministic regardless of thread count.
            for part in parts {
                for (t, v) in part? {
                    values[t] = v;
                }
            }
        }
        Ok(BatchResult {
            values,
            distinct_rows: groups.len(),
        })
    }
}

/// Answer one distinct-row group with a single
/// [`CompressedMatrix::cells_in_row`] call (one `U`-row fetch), leaving
/// `(request position, value)` pairs in `scatter`.
fn run_group(
    matrix: &dyn CompressedMatrix,
    cells: &[(usize, usize)],
    order: &[usize],
    g: &RowGroup,
    scatter: &mut Vec<(usize, f64)>,
) -> Result<()> {
    scatter.clear();
    let span = order
        .get(g.span.clone())
        .ok_or_else(|| AtsError::internal("batch group span out of order bounds"))?;
    let cols: Vec<usize> = span
        .iter()
        .map(|&t| cells.get(t).map(|&(_, j)| j))
        .collect::<Option<_>>()
        .ok_or_else(|| AtsError::internal("batch group position out of request bounds"))?;
    let mut vals = vec![0.0f64; cols.len()];
    matrix.cells_in_row(g.row, &cols, &mut vals)?;
    scatter.extend(span.iter().copied().zip(vals));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactMatrix;
    use ats_linalg::Matrix;

    fn engine_matrix() -> ExactMatrix {
        ExactMatrix(Matrix::from_fn(13, 7, |i, j| {
            ((i * 31 + j * 17) % 23) as f64 - 9.0
        }))
    }

    #[test]
    fn batch_matches_per_cell_loop_bitwise() {
        let e = engine_matrix();
        // Unsorted, duplicated, row-crossing requests.
        let req = BatchRequest::new(vec![
            (12, 6),
            (0, 0),
            (5, 3),
            (5, 3),
            (0, 6),
            (5, 0),
            (12, 6),
            (7, 2),
        ]);
        for threads in [1, 3] {
            let q = QueryEngine::new(&e).with_threads(threads);
            let res = q.batch_cells(&req).unwrap();
            assert_eq!(res.values().len(), req.len());
            assert_eq!(res.distinct_rows(), 4); // rows {0, 5, 7, 12}
            for (&(i, j), &got) in req.cells().iter().zip(res.values()) {
                assert_eq!(got.to_bits(), q.cell(i, j).unwrap().to_bits());
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let e = engine_matrix();
        let res = QueryEngine::new(&e)
            .batch_cells(&BatchRequest::default())
            .unwrap();
        assert!(res.values().is_empty());
        assert_eq!(res.distinct_rows(), 0);
        assert!(BatchRequest::default().is_empty());
    }

    #[test]
    fn out_of_range_rejected_up_front() {
        let e = engine_matrix();
        let q = QueryEngine::new(&e);
        assert!(q
            .batch_cells(&BatchRequest::new(vec![(0, 0), (13, 0)]))
            .is_err());
        assert!(q
            .batch_cells(&BatchRequest::new(vec![(0, 7), (1, 1)]))
            .is_err());
    }
}
