//! Row/column selections for ad hoc queries.
//!
//! The paper's aggregate queries "specify some rows and columns of the
//! data matrix" (§5.2). [`Axis`] describes one dimension — everything, a
//! contiguous range, or an explicit set — and [`Selection`] pairs two of
//! them into a rectangle-of-sorts over the matrix.

use ats_common::{AtsError, Result};

/// A selection along one axis (rows or columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Axis {
    /// Every index.
    All,
    /// A half-open range `[start, end)`.
    Range(usize, usize),
    /// An explicit index set (deduplicated, sorted at construction).
    Set(Vec<usize>),
}

impl Axis {
    /// An explicit set, deduplicated and sorted.
    pub fn set(mut indices: Vec<usize>) -> Axis {
        indices.sort_unstable();
        indices.dedup();
        Axis::Set(indices)
    }

    /// Number of selected indices, given the axis length `len`.
    pub fn count(&self, len: usize) -> usize {
        match self {
            Axis::All => len,
            Axis::Range(a, b) => b.saturating_sub(*a),
            Axis::Set(s) => s.len(),
        }
    }

    /// Validate against an axis of length `len`.
    pub fn validate(&self, len: usize, what: &'static str) -> Result<()> {
        match self {
            Axis::All => Ok(()),
            Axis::Range(a, b) => {
                if a > b || *b > len {
                    Err(AtsError::InvalidArgument(format!(
                        "{what} range [{a}, {b}) out of 0..{len}"
                    )))
                } else {
                    Ok(())
                }
            }
            Axis::Set(s) => {
                for &i in s {
                    if i >= len {
                        return Err(AtsError::oob(what, i, len));
                    }
                }
                Ok(())
            }
        }
    }

    /// Iterate the selected indices in ascending order.
    pub fn iter(&self, len: usize) -> Box<dyn Iterator<Item = usize> + '_> {
        match self {
            Axis::All => Box::new(0..len),
            Axis::Range(a, b) => Box::new(*a..*b),
            Axis::Set(s) => Box::new(s.iter().copied()),
        }
    }

    /// Materialize the selected indices.
    pub fn to_vec(&self, len: usize) -> Vec<usize> {
        self.iter(len).collect()
    }
}

/// A two-dimensional selection: some rows × some columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Row selection ("customers").
    pub rows: Axis,
    /// Column selection ("days").
    pub cols: Axis,
}

impl Selection {
    /// Everything.
    pub fn all() -> Self {
        Selection {
            rows: Axis::All,
            cols: Axis::All,
        }
    }

    /// A single cell.
    pub fn cell(i: usize, j: usize) -> Self {
        Selection {
            rows: Axis::Set(vec![i]),
            cols: Axis::Set(vec![j]),
        }
    }

    /// One whole row.
    pub fn row(i: usize) -> Self {
        Selection {
            rows: Axis::Set(vec![i]),
            cols: Axis::All,
        }
    }

    /// One whole column.
    pub fn col(j: usize) -> Self {
        Selection {
            rows: Axis::All,
            cols: Axis::Set(vec![j]),
        }
    }

    /// All of `rows` restricted to the half-open time range
    /// `[t1, t2)` — the selection behind the query language's
    /// `<agg> rows <axis> in time [t1..t2]` form. Columns *are* time
    /// points in the paper's data model, so a time range is a column
    /// range; over a time-blocked store the engine answers it touching
    /// only the blocks the range overlaps.
    pub fn time_range(rows: Axis, t1: usize, t2: usize) -> Self {
        Selection {
            rows,
            cols: Axis::Range(t1, t2),
        }
    }

    /// Number of selected cells in an `n × m` matrix.
    pub fn cell_count(&self, n: usize, m: usize) -> usize {
        self.rows.count(n) * self.cols.count(m)
    }

    /// Validate both axes.
    pub fn validate(&self, n: usize, m: usize) -> Result<()> {
        self.rows.validate(n, "row")?;
        self.cols.validate(m, "column")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_counts() {
        assert_eq!(Axis::All.count(10), 10);
        assert_eq!(Axis::Range(2, 7).count(10), 5);
        assert_eq!(Axis::set(vec![3, 1, 3]).count(10), 2);
    }

    #[test]
    fn set_dedup_sorts() {
        let a = Axis::set(vec![5, 1, 5, 2]);
        assert_eq!(a.to_vec(10), vec![1, 2, 5]);
    }

    #[test]
    fn validation() {
        assert!(Axis::All.validate(0, "row").is_ok());
        assert!(Axis::Range(0, 5).validate(5, "row").is_ok());
        assert!(Axis::Range(0, 6).validate(5, "row").is_err());
        assert!(Axis::Range(4, 2).validate(5, "row").is_err());
        assert!(Axis::Set(vec![4]).validate(5, "row").is_ok());
        assert!(Axis::Set(vec![5]).validate(5, "row").is_err());
    }

    #[test]
    fn iteration() {
        assert_eq!(Axis::All.to_vec(3), vec![0, 1, 2]);
        assert_eq!(Axis::Range(1, 3).to_vec(10), vec![1, 2]);
        assert_eq!(Axis::Range(3, 3).to_vec(10), Vec::<usize>::new());
    }

    #[test]
    fn selection_cells() {
        let s = Selection {
            rows: Axis::Range(0, 4),
            cols: Axis::set(vec![1, 3, 5]),
        };
        assert_eq!(s.cell_count(100, 10), 12);
        assert!(s.validate(100, 10).is_ok());
        assert!(s.validate(3, 10).is_err());
        assert!(s.validate(100, 5).is_err());
    }

    #[test]
    fn convenience_constructors() {
        assert_eq!(Selection::cell(2, 3).cell_count(10, 10), 1);
        assert_eq!(Selection::row(2).cell_count(10, 7), 7);
        assert_eq!(Selection::col(2).cell_count(10, 7), 10);
        assert_eq!(Selection::all().cell_count(10, 7), 70);
    }
}
