//! # ats-query
//!
//! The query layer of the `adhoc-ts` workspace: the two query classes the
//! paper studies (§1, §5), executed over any
//! [`ats_compress::CompressedMatrix`], plus the error metrics its
//! experiments report.
//!
//! - [`selection`] — row/column selections ("some customers, some days"):
//!   everything, ranges, or explicit sets;
//! - [`engine`] — [`engine::QueryEngine`]: cell queries ("what was the
//!   amount of sales to GHI Inc. on July 11?") and aggregate queries
//!   ("total sales to business customers for the week ending July 12")
//!   with `sum`/`avg`/`count`/`min`/`max`/`stddev`;
//! - [`metrics`] — RMSPE (Def. 5.1), normalized worst-case cell error
//!   (Table 3/4), the rank-ordered error spectrum (Fig. 8), and the
//!   aggregate query error `Q_err` (Eq. 14);
//! - [`workload`] — the random aggregate-query workload generator of
//!   §5.2 (50 queries selecting ≈10% of the cells);
//! - [`parse`] — a tiny textual query language (`cell 42 17`,
//!   `avg rows 0..100 cols all`) for the REPL example;
//! - [`batch`] — [`batch::BatchRequest`]/[`batch::BatchResult`]: batched
//!   cell queries sorted by `(row, column)` and answered with one `U`-row
//!   fetch per distinct requested row;
//! - [`mod@serve`] — the `ats serve` TCP daemon: a length-prefixed wire
//!   protocol over one shared engine, with concurrently arriving cell
//!   queries coalesced into single [`engine::QueryEngine::batch_cells`]
//!   runs and metrics exposed through a `STATS` verb.

pub mod batch;
pub mod engine;
pub mod metrics;
pub mod parse;
pub mod predicate;
pub mod selection;
pub mod serve;
pub mod workload;

pub use batch::{BatchRequest, BatchResult};
pub use engine::{AggregateFn, QueryEngine};
pub use metrics::{ErrorReport, QueryError};
pub use parse::{parse_batch_file, parse_query, run_query, Query};
pub use predicate::{CmpOp, Predicate, TileTruth};
pub use selection::Selection;
pub use serve::{serve, MetricsSnapshot, ServeConfig, ServerHandle};
