//! A long-lived TCP query daemon with coalesced batch execution.
//!
//! The paper's premise is *ad hoc* queries arriving continuously against a
//! compressed store; a one-process-per-query CLI pays a store open (and a
//! cold page cache) per question. This module keeps one
//! [`QueryEngine`] — and therefore one `ShardedStore` page pool — alive
//! behind a TCP listener, so the batching argument of [`crate::batch`]
//! extends *across clients*: concurrently arriving cell queries are
//! collected into a small admission window and executed as one
//! [`QueryEngine::batch_cells`] run, making N clients asking about the
//! same row cost one `U`-row fetch per shard instead of N.
//!
//! Aggregate queries ride the same admission window: requests collected
//! in one window are grouped by identical `(aggregate, selection)` and
//! each distinct group is scanned **once**, the result fanned out to
//! every requester — N clients asking for the same time-range average
//! cost one block scan, not N (the `STATS` counters `coalesced_aggs` /
//! `agg_scans` expose the sharing factor).
//!
//! ## Wire protocol
//!
//! Both directions speak length-prefixed frames: a 4-byte big-endian
//! payload length followed by that many bytes of UTF-8. Request payloads
//! are query lines in the [`crate::parse`] grammar (`cell 42 17`,
//! `avg rows 0..100 cols all`) or one of three verbs: `PING` (liveness),
//! `STATS` (per-connection and server-wide metrics plus I/O counters),
//! `SHUTDOWN` (graceful drain). Responses are `OK …` or `ERR …`; a
//! malformed, oversized, or unparseable request earns an `ERR` frame and
//! the connection stays healthy — the daemon never panics on input.
//!
//! ## Shutdown semantics
//!
//! Shutdown (the `SHUTDOWN` verb, or [`ServerHandle::begin_shutdown`]
//! from the hosting process — the CLI wires stdin EOF / `quit` to it)
//! stops accepting connections, lets every in-flight request finish and
//! its response be written whole, and drains any cells still queued in
//! the admission window through one final batch. Responses are never
//! torn: a connection thread only re-checks the flag *between* frames.

use crate::batch::BatchRequest;
use crate::engine::{AggregateFn, QueryEngine};
use crate::parse::{parse_query, Query};
use crate::predicate::Predicate;
use crate::selection::Selection;
use ats_common::{AtsError, Result};
use ats_storage::IoSnapshot;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Callback handing the server a fresh per-shard I/O snapshot for the
/// `STATS` verb (the query crate cannot name `ShardedStore` directly —
/// the core crate depends on this one, not the other way around).
pub type IoSnapshotFn = Box<dyn Fn() -> Vec<IoSnapshot> + Send + Sync>;

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, `host:port` (port 0 picks a free port; see
    /// [`ServerHandle::addr`] for the resolved one).
    pub addr: String,
    /// Worker threads for aggregate scans and batch execution.
    pub threads: usize,
    /// Admission window: once a cell query arrives, the batcher keeps
    /// collecting more for at most this long before executing.
    pub window: Duration,
    /// Execute the pending batch as soon as it holds this many cells,
    /// even if the window has not expired.
    pub batch_max: usize,
    /// Largest accepted request payload in bytes; longer frames earn an
    /// `ERR` response (the payload is drained so the connection survives).
    pub max_frame: usize,
    /// Most cell queries one connection may have waiting in the batcher
    /// at once. A client pipelining faster than the admission window
    /// drains gets `ERR busy` replies beyond this depth instead of
    /// growing the batcher's queue without bound.
    pub pending_max: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            window: Duration::from_millis(2),
            batch_max: 64,
            max_frame: 1 << 20,
            pending_max: 64,
        }
    }
}

/// Point-in-time copy of the server-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Connections accepted so far.
    pub connections: u64,
    /// Queries answered with `OK` (cells + aggregates).
    pub queries: u64,
    /// Cell queries answered (each went through the admission window).
    pub cells: u64,
    /// Aggregate queries answered.
    pub aggregates: u64,
    /// `ERR` responses written (parse errors, bad frames, out-of-range).
    pub errors: u64,
    /// `ERR busy` responses: cells refused because the connection already
    /// had `pending_max` cells waiting in the batcher.
    pub busy: u64,
    /// `batch_cells` executions — the number of admission windows fired.
    pub batches: u64,
    /// Cells answered across all batches (`cells / batches` is the
    /// coalescing factor).
    pub coalesced_cells: u64,
    /// Distinct `(aggregate, selection)` scans executed by the batcher.
    pub agg_scans: u64,
    /// Aggregate requests admitted through windows (`coalesced_aggs /
    /// agg_scans` is the aggregate sharing factor).
    pub coalesced_aggs: u64,
    /// Summed request latency in microseconds (admission wait included).
    pub latency_usec: u64,
}

/// Live atomic counters behind the snapshot.
#[derive(Debug, Default)]
struct ServerMetrics {
    connections: AtomicU64,
    queries: AtomicU64,
    cells: AtomicU64,
    aggregates: AtomicU64,
    errors: AtomicU64,
    busy: AtomicU64,
    batches: AtomicU64,
    coalesced_cells: AtomicU64,
    agg_scans: AtomicU64,
    coalesced_aggs: AtomicU64,
    latency_usec: AtomicU64,
}

impl ServerMetrics {
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            cells: self.cells.load(Ordering::Relaxed),
            aggregates: self.aggregates.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced_cells: self.coalesced_cells.load(Ordering::Relaxed),
            agg_scans: self.agg_scans.load(Ordering::Relaxed),
            coalesced_aggs: self.coalesced_aggs.load(Ordering::Relaxed),
            latency_usec: self.latency_usec.load(Ordering::Relaxed),
        }
    }
}

/// One cell query waiting in the admission window. The reply is a value
/// or a rendered error message — the requesting connection thread blocks
/// on the channel until the batcher answers.
struct Pending {
    row: usize,
    col: usize,
    tx: mpsc::Sender<std::result::Result<f64, String>>,
}

/// One aggregate query waiting in the admission window. Identical
/// `(f, sel, pred)` triples collected in the same window share one scan
/// (`pred` is `None` for plain aggregates, `Some` for `where` forms).
struct PendingAgg {
    f: AggregateFn,
    sel: Selection,
    pred: Option<Predicate>,
    tx: mpsc::Sender<std::result::Result<f64, String>>,
}

/// The admission queue: cells and aggregates waiting for the current
/// window to fire.
#[derive(Default)]
struct BatchQueue {
    items: Vec<Pending>,
    aggs: Vec<PendingAgg>,
    /// Set by the batcher on exit: late arrivals are refused instead of
    /// waiting forever on a reply that will never come.
    closed: bool,
}

impl BatchQueue {
    fn len(&self) -> usize {
        self.items.len().saturating_add(self.aggs.len())
    }
}

/// State shared by the acceptor, the batcher, and every connection.
struct Shared {
    engine: QueryEngine<'static>,
    window: Duration,
    batch_max: usize,
    max_frame: usize,
    pending_max: usize,
    shutdown: AtomicBool,
    queue: Mutex<BatchQueue>,
    queue_cv: Condvar,
    metrics: ServerMetrics,
    io_snapshots: Option<IoSnapshotFn>,
    conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Lock a mutex, recovering the guard if a holder panicked — the daemon
/// keeps serving; a poisoned queue is still structurally valid.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Shared {
    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
    }
}

/// A running server: the resolved address plus the handles needed to
/// stop it. Dropping the handle does *not* stop the server — call
/// [`ServerHandle::join`] (or [`ServerHandle::begin_shutdown`] followed
/// by `join`) for a graceful drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (with the real port when `addr` asked
    /// for port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to shut down: stop accepting, finish in-flight
    /// requests, drain the admission queue. Returns immediately;
    /// [`ServerHandle::join`] waits for the drain.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has been requested (by this handle or by a
    /// client's `SHUTDOWN` verb).
    pub fn is_shutdown(&self) -> bool {
        self.shared.is_shutdown()
    }

    /// Current server-wide counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Shut down (if not already requested) and wait for the acceptor,
    /// the batcher, and every connection thread to finish. Returns the
    /// final counters.
    pub fn join(mut self) -> Result<MetricsSnapshot> {
        self.shared.begin_shutdown();
        for h in self.accept.take().into_iter().chain(self.batcher.take()) {
            h.join()
                .map_err(|_| AtsError::internal("server thread panicked"))?;
        }
        // Take the handles inside a scoped block so the conns guard is
        // dropped before the (blocking) joins below.
        let conns = {
            let mut held = lock(&self.shared.conns);
            std::mem::take(&mut *held)
        };
        for h in conns {
            h.join()
                .map_err(|_| AtsError::internal("connection thread panicked"))?;
        }
        Ok(self.shared.metrics.snapshot())
    }
}

/// A cloneable trigger that requests shutdown from another thread —
/// the CLI hands one to its stdin watcher so EOF / `quit` drains the
/// daemon exactly like the `SHUTDOWN` verb does.
#[derive(Clone)]
pub struct ShutdownSwitch(Arc<Shared>);

impl ShutdownSwitch {
    /// Request the graceful drain (idempotent).
    pub fn trigger(&self) {
        self.0.begin_shutdown();
    }
}

impl ServerHandle {
    /// A detachable shutdown trigger for watcher threads.
    pub fn shutdown_switch(&self) -> ShutdownSwitch {
        ShutdownSwitch(Arc::clone(&self.shared))
    }
}

/// Start the daemon: bind `cfg.addr`, spawn the acceptor and the batch
/// executor, and return a [`ServerHandle`]. `io_snapshots`, when given,
/// feeds per-shard I/O counters into the `STATS` verb.
///
/// The engine must be the shared (`'static`) shape from
/// [`QueryEngine::shared`] so every connection thread can hold a clone;
/// its thread knob is overridden by `cfg.threads`.
pub fn serve(
    engine: QueryEngine<'static>,
    cfg: ServeConfig,
    io_snapshots: Option<IoSnapshotFn>,
) -> Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr).map_err(AtsError::Io)?;
    let addr = listener.local_addr().map_err(AtsError::Io)?;
    // Non-blocking accept lets the acceptor poll the shutdown flag; no
    // signal machinery exists in safe std (and `unsafe` is denied
    // workspace-wide), so shutdown is always a flag, never a signal.
    listener.set_nonblocking(true).map_err(AtsError::Io)?;
    let shared = Arc::new(Shared {
        engine: engine.with_threads(cfg.threads.max(1)),
        window: cfg.window,
        batch_max: cfg.batch_max.max(1),
        max_frame: cfg.max_frame.max(16),
        pending_max: cfg.pending_max.max(1),
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(BatchQueue::default()),
        queue_cv: Condvar::new(),
        metrics: ServerMetrics::default(),
        io_snapshots,
        conns: Mutex::new(Vec::new()),
    });
    let batcher = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || run_batcher(&shared))
    };
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || run_acceptor(&listener, &shared))
    };
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        batcher: Some(batcher),
    })
}

/// Accept loop: poll for connections until shutdown, handing each stream
/// to its own thread (registered for join-on-shutdown).
fn run_acceptor(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.is_shutdown() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // The listener is non-blocking; the per-connection
                // stream must not inherit that (reads use timeouts).
                let _ = stream.set_nonblocking(false);
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(shared);
                let handle = std::thread::spawn(move || handle_connection(&conn_shared, stream));
                lock(&shared.conns).push(handle);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(5));
            }
            // Transient accept errors (EMFILE, resets): keep serving the
            // connections we have.
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// The admission/coalescing executor: wait for the first pending cell,
/// keep collecting until the window expires or `batch_max` is reached,
/// then run the whole window as one [`QueryEngine::batch_cells`] call
/// and scatter the replies. On shutdown the remaining queue is drained
/// through the same path before the thread exits.
fn run_batcher(shared: &Shared) {
    loop {
        let (pending, aggs) = {
            let mut q = lock(&shared.queue);
            // Phase 1: wait for work (or shutdown + empty queue = done).
            while q.len() == 0 && !shared.is_shutdown() {
                let (guard, _timed_out) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
            if q.len() == 0 {
                q.closed = true;
                return;
            }
            // Phase 2: the admission window — collect more requests
            // until the deadline, the size cap, or shutdown (which
            // executes immediately so the drain finishes promptly).
            let deadline = Instant::now() + shared.window;
            while q.len() < shared.batch_max && !shared.is_shutdown() {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timed_out) = shared
                    .queue_cv
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
            (std::mem::take(&mut q.items), std::mem::take(&mut q.aggs))
        };
        execute_batch(shared, pending);
        execute_aggs(shared, aggs);
    }
}

/// Run one admission window's cells as a single batch and reply to every
/// waiting connection. Cells were bounds-checked at admission, so a
/// batch error here is environmental (I/O, corrupt page) and is fanned
/// out to every requester rather than failing silently.
fn execute_batch(shared: &Shared, pending: Vec<Pending>) {
    if pending.is_empty() {
        return;
    }
    shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
    let count = u64::try_from(pending.len()).unwrap_or(u64::MAX);
    shared
        .metrics
        .coalesced_cells
        .fetch_add(count, Ordering::Relaxed);
    let req = BatchRequest::new(pending.iter().map(|p| (p.row, p.col)).collect());
    match shared.engine.batch_cells(&req) {
        Ok(res) => {
            for (p, v) in pending.iter().zip(res.values()) {
                let _ = p.tx.send(Ok(*v));
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for p in &pending {
                let _ = p.tx.send(Err(msg.clone()));
            }
        }
    }
}

/// Run one admission window's aggregates: group identical
/// `(f, sel, pred)` requests, scan each distinct group exactly once, and
/// fan the result out to every waiting requester. A failed scan errs
/// only its own group — the other groups in the window still answer.
fn execute_aggs(shared: &Shared, pending: Vec<PendingAgg>) {
    if pending.is_empty() {
        return;
    }
    let count = u64::try_from(pending.len()).unwrap_or(u64::MAX);
    shared
        .metrics
        .coalesced_aggs
        .fetch_add(count, Ordering::Relaxed);
    let mut groups: Vec<(
        AggregateFn,
        Selection,
        Option<Predicate>,
        Vec<mpsc::Sender<_>>,
    )> = Vec::new();
    for p in pending {
        match groups
            .iter_mut()
            .find(|(f, sel, pred, _)| *f == p.f && *sel == p.sel && *pred == p.pred)
        {
            Some((_, _, _, txs)) => txs.push(p.tx),
            None => groups.push((p.f, p.sel, p.pred, vec![p.tx])),
        }
    }
    for (f, sel, pred, txs) in groups {
        shared.metrics.agg_scans.fetch_add(1, Ordering::Relaxed);
        let res = match &pred {
            Some(pred) => shared.engine.aggregate_where(&sel, f, pred),
            None => shared.engine.aggregate(&sel, f),
        };
        match res {
            Ok(v) => {
                for tx in txs {
                    let _ = tx.send(Ok(v));
                }
            }
            Err(e) => {
                let msg = e.to_string();
                for tx in txs {
                    let _ = tx.send(Err(msg.clone()));
                }
            }
        }
    }
}

/// What one attempt to read a request frame produced.
enum FrameRead {
    /// A complete payload of at most `max_frame` bytes.
    Payload(Vec<u8>),
    /// The client declared a frame longer than `max_frame`; the payload
    /// was drained and discarded so the connection stays usable.
    Oversized(usize),
    /// Clean end of stream (or mid-frame disconnect) — close quietly.
    Closed,
    /// Shutdown was requested while waiting between frames.
    ShuttingDown,
}

/// Read exactly `buf.len()` bytes, riding out read timeouts so the
/// shutdown flag is polled between them. Returns `false` on EOF, a hard
/// I/O error, or shutdown-while-waiting (the caller closes either way —
/// except that `started` frames ride out shutdown so an already-sent
/// request is still answered, never torn).
fn read_full(stream: &mut TcpStream, buf: &mut [u8], shared: &Shared, started: bool) -> bool {
    let mut filled = 0usize;
    while filled < buf.len() {
        let Some(rest) = buf.get_mut(filled..) else {
            return false;
        };
        match stream.read(rest) {
            Ok(0) => return false,
            Ok(n) => filled = filled.saturating_add(n),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Between frames (`!started`, nothing read yet) shutdown
                // closes the connection; inside a frame we keep reading
                // so a request already on the wire gets its response.
                if shared.is_shutdown() && !started && filled == 0 {
                    return false;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Read one length-prefixed frame.
fn read_frame(stream: &mut TcpStream, shared: &Shared) -> FrameRead {
    let mut header = [0u8; 4];
    if !read_full(stream, &mut header, shared, false) {
        return if shared.is_shutdown() {
            FrameRead::ShuttingDown
        } else {
            FrameRead::Closed
        };
    }
    let len = match usize::try_from(u32::from_be_bytes(header)) {
        Ok(len) => len,
        Err(_) => return FrameRead::Closed,
    };
    if len > shared.max_frame {
        // Drain the declared payload in bounded chunks so the stream
        // stays framed; give up (close) only on EOF or error.
        let mut remaining = len;
        let mut sink = vec![0u8; 8192.min(len)];
        while remaining > 0 {
            let take = sink.len().min(remaining);
            let Some(chunk) = sink.get_mut(..take) else {
                return FrameRead::Closed;
            };
            if !read_full(stream, chunk, shared, true) {
                return FrameRead::Closed;
            }
            remaining = remaining.saturating_sub(take);
        }
        return FrameRead::Oversized(len);
    }
    let mut payload = vec![0u8; len];
    if !read_full(stream, &mut payload, shared, true) {
        return FrameRead::Closed;
    }
    FrameRead::Payload(payload)
}

/// Write one length-prefixed response frame. A response is a single
/// `write_all` of header + payload, so it is never interleaved with
/// another response on the same connection.
fn write_frame(stream: &mut TcpStream, payload: &str) -> std::io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "response frame too long")
    })?;
    let mut frame = Vec::with_capacity(bytes.len().saturating_add(4));
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(bytes);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Per-connection counters, reported by this connection's `STATS`.
/// Atomics: the reader thread counts verbs/aggregates/errors, the writer
/// thread counts cell replies as it resolves them.
#[derive(Default)]
struct ConnMetrics {
    queries: AtomicU64,
    errors: AtomicU64,
    latency_usec: AtomicU64,
}

/// One entry in a connection's in-order reply queue. The reader pushes
/// one item per request frame; the writer resolves and writes them in
/// FIFO order, so pipelined replies are never reordered.
enum WriterItem {
    /// A pre-rendered reply line (verbs, aggregates, errors) — already
    /// counted by the reader.
    Line(String),
    /// A cell or aggregate admitted to the batcher: wait for its
    /// result, count it, then write.
    Batched {
        rx: mpsc::Receiver<std::result::Result<f64, String>>,
        started: Instant,
        /// Whether this was an aggregate (counts into `aggregates`)
        /// rather than a cell (counts into `cells`).
        agg: bool,
    },
    /// The `SHUTDOWN` ack: write it, then raise the flag — the requester
    /// always hears the acknowledgment before the drain begins.
    Shutdown(String),
}

/// Serve one connection. Requests pipeline: a dedicated writer thread
/// owns the response side of the socket and resolves replies in FIFO
/// order, so a client may have up to `pending_max` cell queries in the
/// batcher at once — beyond that depth new cells earn `ERR busy` instead
/// of growing the batcher's queue. If the peer also stops *reading*
/// (so even `ERR busy` lines would pile up), the reader stops pulling
/// frames once the reply queue is twice `pending_max` deep and lets TCP
/// backpressure stall the flood.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    // Short read timeouts make the loop poll the shutdown flag; they are
    // retried inside `read_full`, invisible to the protocol.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(ConnMetrics::default());
    // Unresolved cells this connection has in the batcher (ERR-busy cap).
    let cells_in_flight = Arc::new(AtomicU64::new(0));
    // Reply-queue depth (hard backpressure cap).
    let queued = Arc::new(AtomicU64::new(0));
    let (wtx, wrx) = mpsc::channel::<WriterItem>();
    let writer = {
        let shared = Arc::clone(shared);
        let conn = Arc::clone(&conn);
        let cells_in_flight = Arc::clone(&cells_in_flight);
        let queued = Arc::clone(&queued);
        std::thread::spawn(move || {
            run_writer(&shared, &conn, write_half, &wrx, &cells_in_flight, &queued)
        })
    };
    let backpressure = u64::try_from(shared.pending_max.saturating_mul(2)).unwrap_or(u64::MAX);
    loop {
        // Hard backpressure: a peer that writes but never reads fills the
        // reply queue; stop reading frames and let the kernel's TCP
        // window push back instead of buffering `ERR busy` lines forever.
        while queued.load(Ordering::Acquire) >= backpressure && !shared.is_shutdown() {
            std::thread::sleep(Duration::from_millis(1));
        }
        let payload = match read_frame(&mut stream, shared) {
            FrameRead::Payload(p) => p,
            FrameRead::Oversized(len) => {
                conn.errors.fetch_add(1, Ordering::Relaxed);
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let msg = format!(
                    "ERR frame of {len} bytes exceeds the {} byte limit",
                    shared.max_frame
                );
                queued.fetch_add(1, Ordering::Release);
                if wtx.send(WriterItem::Line(msg)).is_err() {
                    break;
                }
                continue;
            }
            FrameRead::Closed | FrameRead::ShuttingDown => break,
        };
        let started = Instant::now();
        let item = match std::str::from_utf8(&payload) {
            Ok(text) => dispatch(shared, &conn, &cells_in_flight, text, started),
            Err(_) => immediate_err(
                shared,
                &conn,
                "request payload is not valid UTF-8".to_string(),
                started,
            ),
        };
        let done = matches!(item, WriterItem::Shutdown(_));
        queued.fetch_add(1, Ordering::Release);
        if wtx.send(item).is_err() || done {
            break;
        }
    }
    // Close the reply queue and let the writer drain it: replies for
    // cells still in the batcher are written before the thread exits.
    drop(wtx);
    let _ = writer.join();
}

/// The writer half of one connection: resolve queued replies in FIFO
/// order and write each as one frame. Keeps draining (without writing)
/// after a socket error so in-flight cell receivers still resolve.
fn run_writer(
    shared: &Shared,
    conn: &ConnMetrics,
    mut stream: TcpStream,
    wrx: &mpsc::Receiver<WriterItem>,
    cells_in_flight: &AtomicU64,
    queued: &AtomicU64,
) {
    let mut broken = false;
    while let Ok(item) = wrx.recv() {
        let (line, done) = match item {
            WriterItem::Line(s) => (s, false),
            WriterItem::Batched { rx, started, agg } => {
                let line = match rx.recv() {
                    Ok(Ok(v)) => {
                        conn.queries.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.queries.fetch_add(1, Ordering::Relaxed);
                        if agg {
                            shared.metrics.aggregates.fetch_add(1, Ordering::Relaxed);
                        } else {
                            shared.metrics.cells.fetch_add(1, Ordering::Relaxed);
                        }
                        format!("OK {v}")
                    }
                    Ok(Err(msg)) => {
                        conn.errors.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        format!("ERR {msg}")
                    }
                    Err(_) => {
                        conn.errors.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                        "ERR batch executor dropped the request".to_string()
                    }
                };
                cells_in_flight.fetch_sub(1, Ordering::Release);
                let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                conn.latency_usec.fetch_add(elapsed, Ordering::Relaxed);
                shared
                    .metrics
                    .latency_usec
                    .fetch_add(elapsed, Ordering::Relaxed);
                (line, false)
            }
            WriterItem::Shutdown(s) => (s, true),
        };
        queued.fetch_sub(1, Ordering::Release);
        if !broken && write_frame(&mut stream, &line).is_err() {
            broken = true;
        }
        if done {
            shared.begin_shutdown();
            return;
        }
    }
}

/// Record an immediately-known `ERR` reply (reader side).
fn immediate_err(shared: &Shared, conn: &ConnMetrics, msg: String, started: Instant) -> WriterItem {
    conn.errors.fetch_add(1, Ordering::Relaxed);
    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
    count_latency(shared, conn, started);
    WriterItem::Line(format!("ERR {msg}"))
}

fn count_latency(shared: &Shared, conn: &ConnMetrics, started: Instant) {
    let elapsed = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    conn.latency_usec.fetch_add(elapsed, Ordering::Relaxed);
    shared
        .metrics
        .latency_usec
        .fetch_add(elapsed, Ordering::Relaxed);
}

/// Execute one request line (reader side): a protocol verb, an aggregate
/// (answered synchronously), or a cell (admitted to the batcher, reply
/// resolved later by the writer).
fn dispatch(
    shared: &Shared,
    conn: &ConnMetrics,
    cells_in_flight: &AtomicU64,
    text: &str,
    started: Instant,
) -> WriterItem {
    let line = text.trim();
    if line.eq_ignore_ascii_case("ping") {
        count_latency(shared, conn, started);
        return WriterItem::Line("OK pong".to_string());
    }
    if line.eq_ignore_ascii_case("shutdown") {
        count_latency(shared, conn, started);
        return WriterItem::Shutdown("OK shutting down".to_string());
    }
    if line.eq_ignore_ascii_case("stats") {
        count_latency(shared, conn, started);
        return WriterItem::Line(format!("OK {}", render_stats(shared, conn)));
    }
    match parse_query(line) {
        Ok(Query::Cell(i, j)) => cell_via_batcher(shared, conn, cells_in_flight, i, j, started),
        Ok(Query::Aggregate(f, sel)) => {
            agg_via_batcher(shared, conn, cells_in_flight, f, sel, None, started)
        }
        Ok(Query::AggregateWhere(f, sel, pred)) => {
            agg_via_batcher(shared, conn, cells_in_flight, f, sel, Some(pred), started)
        }
        Err(e) => immediate_err(shared, conn, e.to_string(), started),
    }
}

/// Admit one cell query into the coalescing window; the writer thread
/// waits for the batch that answers it. Bounds are checked *here*, per
/// request — a bad cell earns its own `ERR` without poisoning the batch
/// the other clients' queries land in ([`QueryEngine::batch_cells`]
/// fails whole batches on any invalid cell, so invalid cells must never
/// be enqueued). A connection already at `pending_max` unresolved cells
/// is refused with `ERR busy` — the batcher's queue cannot be grown
/// without bound by one flooding peer.
fn cell_via_batcher(
    shared: &Shared,
    conn: &ConnMetrics,
    cells_in_flight: &AtomicU64,
    row: usize,
    col: usize,
    started: Instant,
) -> WriterItem {
    let (n, m) = (shared.engine.rows(), shared.engine.cols());
    if row >= n {
        return immediate_err(
            shared,
            conn,
            AtsError::oob("row", row, n).to_string(),
            started,
        );
    }
    if col >= m {
        return immediate_err(
            shared,
            conn,
            AtsError::oob("column", col, m).to_string(),
            started,
        );
    }
    let pending_max = u64::try_from(shared.pending_max).unwrap_or(u64::MAX);
    if cells_in_flight.load(Ordering::Acquire) >= pending_max {
        shared.metrics.busy.fetch_add(1, Ordering::Relaxed);
        return immediate_err(
            shared,
            conn,
            format!("busy: {pending_max} cell queries already in flight on this connection"),
            started,
        );
    }
    let (tx, rx) = mpsc::channel();
    let admitted = {
        let mut q = lock(&shared.queue);
        if q.closed {
            false
        } else {
            q.items.push(Pending { row, col, tx });
            true
        }
    };
    if !admitted {
        return immediate_err(shared, conn, "server is shutting down".to_string(), started);
    }
    cells_in_flight.fetch_add(1, Ordering::Release);
    shared.queue_cv.notify_all();
    WriterItem::Batched {
        rx,
        started,
        agg: false,
    }
}

/// Admit one aggregate query into the coalescing window; identical
/// `(aggregate, selection, predicate)` requests collected in the same
/// window share one scan. The selection is bounds-checked at admission
/// so a bad request earns its own immediate `ERR`; in-flight aggregates
/// count against the same per-connection `pending_max` cap as cells.
fn agg_via_batcher(
    shared: &Shared,
    conn: &ConnMetrics,
    cells_in_flight: &AtomicU64,
    f: AggregateFn,
    sel: Selection,
    pred: Option<Predicate>,
    started: Instant,
) -> WriterItem {
    if let Err(e) = sel.validate(shared.engine.rows(), shared.engine.cols()) {
        return immediate_err(shared, conn, e.to_string(), started);
    }
    let pending_max = u64::try_from(shared.pending_max).unwrap_or(u64::MAX);
    if cells_in_flight.load(Ordering::Acquire) >= pending_max {
        shared.metrics.busy.fetch_add(1, Ordering::Relaxed);
        return immediate_err(
            shared,
            conn,
            format!("busy: {pending_max} queries already in flight on this connection"),
            started,
        );
    }
    let (tx, rx) = mpsc::channel();
    let admitted = {
        let mut q = lock(&shared.queue);
        if q.closed {
            false
        } else {
            q.aggs.push(PendingAgg { f, sel, pred, tx });
            true
        }
    };
    if !admitted {
        return immediate_err(shared, conn, "server is shutting down".to_string(), started);
    }
    cells_in_flight.fetch_add(1, Ordering::Release);
    shared.queue_cv.notify_all();
    WriterItem::Batched {
        rx,
        started,
        agg: true,
    }
}

/// Render the `STATS` response: one `stats` marker line, then
/// `key value` lines for the server-wide counters, this connection's
/// counters, and (when wired) the per-shard and total I/O snapshots.
fn render_stats(shared: &Shared, conn: &ConnMetrics) -> String {
    let m = shared.metrics.snapshot();
    let mut out = String::from("stats\n");
    out.push_str(&format!(
        "server connections={} queries={} cells={} aggregates={} errors={} busy={} \
         batches={} coalesced_cells={} agg_scans={} coalesced_aggs={} latency_usec={}\n",
        m.connections,
        m.queries,
        m.cells,
        m.aggregates,
        m.errors,
        m.busy,
        m.batches,
        m.coalesced_cells,
        m.agg_scans,
        m.coalesced_aggs,
        m.latency_usec
    ));
    out.push_str(&format!(
        "conn queries={} errors={} latency_usec={}\n",
        conn.queries.load(Ordering::Relaxed),
        conn.errors.load(Ordering::Relaxed),
        conn.latency_usec.load(Ordering::Relaxed)
    ));
    if let Some(io) = &shared.io_snapshots {
        let mut total = IoSnapshot::default();
        for (idx, s) in io().iter().enumerate() {
            total.merge(s);
            out.push_str(&format!(
                "io shard={idx} physical={} logical={} bytes={} hits={}\n",
                s.physical_reads, s.logical_reads, s.bytes_read, s.cache_hits
            ));
        }
        out.push_str(&format!(
            "io total physical={} logical={} bytes={} hits={}\n",
            total.physical_reads, total.logical_reads, total.bytes_read, total.cache_hits
        ));
    }
    out
}

/// Client-side frame helpers, shared by the integration tests and the
/// CI smoke client (`ats serve` is driven over a real socket in both).
pub mod client {
    use super::*;

    /// Hard cap on a response frame the client will buffer. The server
    /// never legitimately sends more (large query results stream as
    /// multiple frames); a corrupt or hostile peer declaring a huge
    /// length must not drive an allocation on the client.
    pub const MAX_RESPONSE_LEN: usize = 64 << 20;

    /// Send one request payload as a length-prefixed frame.
    pub fn send(stream: &mut TcpStream, payload: &str) -> Result<()> {
        write_frame(stream, payload).map_err(AtsError::Io)
    }

    /// Read one response frame (blocking until the peer answers).
    pub fn recv(stream: &mut TcpStream) -> Result<String> {
        let mut header = [0u8; 4];
        stream.read_exact(&mut header).map_err(AtsError::Io)?;
        let len = usize::try_from(u32::from_be_bytes(header))
            .map_err(|_| AtsError::internal("response length does not fit in usize"))?;
        if len > MAX_RESPONSE_LEN {
            return Err(AtsError::Corrupt(format!(
                "response frame declares {len} bytes (cap {MAX_RESPONSE_LEN})"
            )));
        }
        let mut payload = vec![0u8; len];
        stream.read_exact(&mut payload).map_err(AtsError::Io)?;
        String::from_utf8(payload)
            .map_err(|_| AtsError::Corrupt("response frame is not UTF-8".to_string()))
    }

    /// Send `payload` and wait for the reply — one round trip.
    pub fn round_trip(stream: &mut TcpStream, payload: &str) -> Result<String> {
        send(stream, payload)?;
        recv(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExactMatrix;
    use ats_linalg::Matrix;

    fn start(window_ms: u64, batch_max: usize) -> (ServerHandle, QueryEngine<'static>) {
        let m = Arc::new(ExactMatrix(Matrix::from_fn(12, 9, |i, j| {
            ((i * 13 + j * 5) % 17) as f64 - 4.0
        })));
        let engine = QueryEngine::shared(m);
        let cfg = ServeConfig {
            window: Duration::from_millis(window_ms),
            batch_max,
            ..ServeConfig::default()
        };
        let handle = serve(engine.clone(), cfg, None).unwrap();
        (handle, engine)
    }

    fn connect(handle: &ServerHandle) -> TcpStream {
        TcpStream::connect(handle.addr()).unwrap()
    }

    #[test]
    fn ping_query_stats_shutdown_round_trip() {
        let (handle, engine) = start(1, 8);
        let mut c = connect(&handle);
        assert_eq!(client::round_trip(&mut c, "PING").unwrap(), "OK pong");
        let cell = client::round_trip(&mut c, "cell 3 4").unwrap();
        let want = engine.cell(3, 4).unwrap();
        assert_eq!(cell, format!("OK {want}"));
        let agg = client::round_trip(&mut c, "sum rows all cols all").unwrap();
        assert!(agg.starts_with("OK "), "{agg}");
        let stats = client::round_trip(&mut c, "STATS").unwrap();
        assert!(stats.contains("server connections=1"), "{stats}");
        assert!(stats.contains("conn queries=2"), "{stats}");
        let bye = client::round_trip(&mut c, "SHUTDOWN").unwrap();
        assert_eq!(bye, "OK shutting down");
        let m = handle.join().unwrap();
        assert_eq!(m.cells, 1);
        assert_eq!(m.aggregates, 1);
        assert_eq!(m.batches, 1);
    }

    #[test]
    fn parse_and_range_errors_keep_connection_alive() {
        let (handle, _engine) = start(1, 8);
        let mut c = connect(&handle);
        for bad in ["definitely not a query", "cell 99 0", "cell 0 99", ""] {
            let r = client::round_trip(&mut c, bad).unwrap();
            assert!(r.starts_with("ERR "), "{bad:?} -> {r}");
        }
        // Still healthy afterwards.
        assert_eq!(client::round_trip(&mut c, "PING").unwrap(), "OK pong");
        handle.begin_shutdown();
        let m = handle.join().unwrap();
        assert_eq!(m.errors, 4);
    }

    #[test]
    fn oversized_frame_is_refused_but_survivable() {
        let (handle, _engine) = start(1, 8);
        let mut c = connect(&handle);
        // Frame longer than max_frame: declared len 2 MiB, fully sent.
        let huge = vec![b'x'; 2 << 20];
        let len = u32::try_from(huge.len()).unwrap();
        c.write_all(&len.to_be_bytes()).unwrap();
        c.write_all(&huge).unwrap();
        let r = client::recv(&mut c).unwrap();
        assert!(r.starts_with("ERR frame of"), "{r}");
        assert_eq!(client::round_trip(&mut c, "PING").unwrap(), "OK pong");
        handle.begin_shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_drains_pending_window() {
        // A huge window with a huge cap: the batch would sit for 30s —
        // shutdown must flush it instead, and the client still gets the
        // right answer.
        let (handle, engine) = start(30_000, 1024);
        let mut c = connect(&handle);
        client::send(&mut c, "cell 2 7").unwrap();
        std::thread::sleep(Duration::from_millis(150));
        handle.begin_shutdown();
        let r = client::recv(&mut c).unwrap();
        assert_eq!(r, format!("OK {}", engine.cell(2, 7).unwrap()));
        let m = handle.join().unwrap();
        assert_eq!(m.cells, 1);
        assert_eq!(m.batches, 1);
    }

    #[test]
    fn identical_aggregates_share_one_scan() {
        // Three clients ask the same range aggregate plus one distinct
        // one inside a single window: the batcher must run exactly two
        // scans and fan the shared answer out.
        let (handle, engine) = start(30_000, 4);
        let mut clients: Vec<TcpStream> = (0..4).map(|_| connect(&handle)).collect();
        let queries = [
            "sum rows all cols 2..6",
            "sum rows all cols 2..6",
            "sum rows all cols 2..6",
            "max rows all cols all",
        ];
        for (c, q) in clients.iter_mut().zip(queries) {
            client::send(c, q).unwrap();
        }
        let mut replies = Vec::new();
        for c in &mut clients {
            replies.push(client::recv(c).unwrap());
        }
        let want_sum = engine
            .aggregate(
                &Selection {
                    rows: crate::selection::Axis::All,
                    cols: crate::selection::Axis::Range(2, 6),
                },
                AggregateFn::Sum,
            )
            .unwrap();
        for r in replies.iter().take(3) {
            assert_eq!(r, &format!("OK {want_sum}"));
        }
        assert!(replies[3].starts_with("OK "), "{}", replies[3]);
        handle.begin_shutdown();
        let m = handle.join().unwrap();
        assert_eq!(m.aggregates, 4);
        assert_eq!(m.coalesced_aggs, 4);
        assert_eq!(m.agg_scans, 2, "three identical + one distinct = two scans");
        assert_eq!(m.batches, 0, "no cell batches ran");
    }

    #[test]
    fn where_aggregates_coalesce_by_predicate() {
        // Two identical `where` queries share one scan; the same
        // selection with a different threshold — and the predicate-free
        // form of the same selection — each get their own.
        let (handle, engine) = start(30_000, 4);
        let mut clients: Vec<TcpStream> = (0..4).map(|_| connect(&handle)).collect();
        let queries = [
            "count rows all where value > 3",
            "count rows all where value > 3",
            "count rows all where value > 5",
            "count rows all cols all",
        ];
        for (c, q) in clients.iter_mut().zip(queries) {
            client::send(c, q).unwrap();
        }
        let mut replies = Vec::new();
        for c in &mut clients {
            replies.push(client::recv(c).unwrap());
        }
        let sel = Selection {
            rows: crate::selection::Axis::All,
            cols: crate::selection::Axis::All,
        };
        let want = engine
            .aggregate_where(
                &sel,
                AggregateFn::Count,
                &Predicate::new(crate::predicate::CmpOp::Gt, 3.0).unwrap(),
            )
            .unwrap();
        assert_eq!(replies[0], format!("OK {want}"));
        assert_eq!(replies[1], format!("OK {want}"));
        assert!(replies[2].starts_with("OK "), "{}", replies[2]);
        assert_ne!(replies[2], replies[0]);
        assert_eq!(replies[3], "OK 108", "12x9 cells unfiltered");
        handle.begin_shutdown();
        let m = handle.join().unwrap();
        assert_eq!(m.aggregates, 4);
        assert_eq!(m.coalesced_aggs, 4);
        assert_eq!(
            m.agg_scans, 3,
            "two identical where + distinct threshold + plain = three scans"
        );
    }

    #[test]
    fn aggregate_errors_err_only_their_group() {
        // An empty-selection aggregate that passes bounds validation
        // still fails at scan time; sharing a window with a healthy
        // group must not poison the healthy answers.
        let (handle, _engine) = start(30_000, 2);
        let mut a = connect(&handle);
        let mut b = connect(&handle);
        client::send(&mut a, "avg rows all cols 4..4").unwrap();
        client::send(&mut b, "avg rows all cols all").unwrap();
        let ra = client::recv(&mut a).unwrap();
        let rb = client::recv(&mut b).unwrap();
        assert!(ra.starts_with("ERR "), "{ra}");
        assert!(rb.starts_with("OK "), "{rb}");
        handle.begin_shutdown();
        let m = handle.join().unwrap();
        assert_eq!(m.aggregates, 1);
        assert_eq!(m.errors, 1);
        assert_eq!(m.agg_scans, 2);
    }

    #[test]
    fn batch_max_fires_without_waiting_for_window() {
        let (handle, engine) = start(30_000, 3);
        let mut clients: Vec<TcpStream> = (0..3).map(|_| connect(&handle)).collect();
        for (t, c) in clients.iter_mut().enumerate() {
            client::send(c, &format!("cell 5 {t}")).unwrap();
        }
        for (t, c) in clients.iter_mut().enumerate() {
            let r = client::recv(c).unwrap();
            assert_eq!(r, format!("OK {}", engine.cell(5, t).unwrap()));
        }
        handle.begin_shutdown();
        let m = handle.join().unwrap();
        assert_eq!(m.batches, 1, "three cells must share one batch");
        assert_eq!(m.coalesced_cells, 3);
    }
}
