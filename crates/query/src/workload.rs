//! Random aggregate-query workloads (§5.2).
//!
//! "We posed 50 aggregate queries to determine the average of a randomly
//! selected set of rows and columns … The number of rows and columns
//! selected was tuned so that approximately 10% of the data cells would
//! be included in the selection." This module generates exactly that
//! workload, deterministically per seed.

use crate::selection::{Axis, Selection};
use ats_common::{AtsError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_aggregate_queries`].
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of queries (paper: 50).
    pub queries: usize,
    /// Target fraction of cells each query covers (paper: ~0.10).
    pub cell_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            queries: 50,
            cell_fraction: 0.10,
            seed: 4242,
        }
    }
}

/// Sample `count` distinct indices from `0..len` (Floyd's algorithm).
fn sample_indices(rng: &mut StdRng, len: usize, count: usize) -> Vec<usize> {
    debug_assert!(count <= len);
    let mut chosen = std::collections::HashSet::with_capacity(count);
    for j in (len - count)..len {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut v: Vec<usize> = chosen.into_iter().collect();
    v.sort_unstable();
    v
}

/// Generate random row×column selections each covering about
/// `cell_fraction` of an `n × m` matrix.
///
/// The row/column split is itself randomized per query: a random row
/// fraction `fr ∈ [cell_fraction, 1]` is drawn, and the column fraction
/// is `cell_fraction / fr`, so queries range from "many customers, few
/// days" to "few customers, many days" like real ad hoc workloads.
pub fn random_aggregate_queries(
    n: usize,
    m: usize,
    cfg: &WorkloadConfig,
) -> Result<Vec<Selection>> {
    if n == 0 || m == 0 {
        return Err(AtsError::InvalidArgument("empty matrix".into()));
    }
    if !(0.0..=1.0).contains(&cfg.cell_fraction) || cfg.cell_fraction == 0.0 {
        return Err(AtsError::InvalidArgument(format!(
            "cell_fraction {} must be in (0, 1]",
            cfg.cell_fraction
        )));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.queries);
    for _ in 0..cfg.queries {
        let fr: f64 = rng.gen_range(cfg.cell_fraction..=1.0);
        let fc = (cfg.cell_fraction / fr).min(1.0);
        let rows = ((fr * n as f64).round() as usize).clamp(1, n);
        let cols = ((fc * m as f64).round() as usize).clamp(1, m);
        out.push(Selection {
            rows: Axis::Set(sample_indices(&mut rng, n, rows)),
            cols: Axis::Set(sample_indices(&mut rng, m, cols)),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let qs = random_aggregate_queries(1000, 100, &WorkloadConfig::default()).unwrap();
        assert_eq!(qs.len(), 50);
    }

    #[test]
    fn coverage_near_target() {
        let (n, m) = (2000usize, 366usize);
        let cfg = WorkloadConfig::default();
        let qs = random_aggregate_queries(n, m, &cfg).unwrap();
        let mut total = 0.0;
        for q in &qs {
            q.validate(n, m).unwrap();
            total += q.cell_count(n, m) as f64 / (n * m) as f64;
        }
        let avg = total / qs.len() as f64;
        assert!(
            (0.05..=0.2).contains(&avg),
            "average coverage {avg} far from 10%"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorkloadConfig::default();
        let a = random_aggregate_queries(100, 30, &cfg).unwrap();
        let b = random_aggregate_queries(100, 30, &cfg).unwrap();
        assert_eq!(a, b);
        let c = random_aggregate_queries(100, 30, &WorkloadConfig { seed: 1, ..cfg }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn indices_unique_sorted_in_bounds() {
        let qs = random_aggregate_queries(50, 20, &WorkloadConfig::default()).unwrap();
        for q in &qs {
            if let Axis::Set(rows) = &q.rows {
                for w in rows.windows(2) {
                    assert!(w[0] < w[1]);
                }
                assert!(*rows.last().unwrap() < 50);
            } else {
                panic!("expected Set rows");
            }
        }
    }

    #[test]
    fn tiny_matrix_still_valid() {
        let qs = random_aggregate_queries(1, 1, &WorkloadConfig::default()).unwrap();
        for q in &qs {
            assert_eq!(q.cell_count(1, 1), 1);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(random_aggregate_queries(0, 5, &WorkloadConfig::default()).is_err());
        let bad = WorkloadConfig {
            cell_fraction: 0.0,
            ..WorkloadConfig::default()
        };
        assert!(random_aggregate_queries(10, 5, &bad).is_err());
    }

    #[test]
    fn full_fraction_selects_everything() {
        let cfg = WorkloadConfig {
            queries: 3,
            cell_fraction: 1.0,
            seed: 1,
        };
        let qs = random_aggregate_queries(10, 4, &cfg).unwrap();
        for q in &qs {
            assert_eq!(q.cell_count(10, 4), 40);
        }
    }
}
