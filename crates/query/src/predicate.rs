//! Value predicates (`where value > x`) and their three-valued tile
//! classification against zone-map bounds.
//!
//! A [`Predicate`] is a comparison between a reconstructed cell value
//! and a finite constant. Evaluated per cell it is two-valued; evaluated
//! against a synopsis tile's `[min, max]` envelope it is *three*-valued
//! ([`TileTruth`]): the bounds can prove every cell of the tile matches
//! (`True`), prove none does (`False`), or prove nothing (`Maybe`).
//! Because the store's synopses bound the served values **exactly**
//! (deltas applied at emit time — see `ats_storage::synopsis`), `False`
//! tiles are safe to skip without reconstruction and `True` tiles can
//! feed `count` straight from cell counts; only `Maybe` tiles must be
//! reconstructed and tested cell by cell.
//!
//! NaN discipline: a NaN cell compares false under every operator, and a
//! tile containing a NaN has NaN (poisoned) bounds, which classify as
//! `Maybe` — the cells are then tested individually and excluded, so
//! pruned and exact scans agree on NaN-bearing data.

use ats_common::{AtsError, Result};

/// Comparison operators of the `where` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `value > x`
    Gt,
    /// `value >= x`
    Ge,
    /// `value < x`
    Lt,
    /// `value <= x`
    Le,
    /// `value = x`
    Eq,
}

impl CmpOp {
    /// The operator's query-language spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Eq => "=",
        }
    }

    /// Parse a query-language operator token.
    pub fn parse(tok: &str) -> Result<CmpOp> {
        Ok(match tok {
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            "=" | "==" => CmpOp::Eq,
            other => {
                return Err(AtsError::InvalidArgument(format!(
                    "unknown comparison operator {other:?} (try >, >=, <, <=, =)"
                )))
            }
        })
    }
}

/// What a tile's `[min, max]` bounds prove about a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileTruth {
    /// Every cell in the tile satisfies the predicate.
    True,
    /// No cell in the tile satisfies the predicate.
    False,
    /// The bounds prove nothing; cells must be tested individually.
    Maybe,
}

/// A value predicate: `value <op> threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Predicate {
    /// The comparison operator.
    pub op: CmpOp,
    /// The comparison constant (always finite — see [`Predicate::new`]).
    pub value: f64,
}

impl Predicate {
    /// Build a predicate; the threshold must be finite (a NaN or
    /// infinite threshold makes every tile bound vacuous).
    pub fn new(op: CmpOp, value: f64) -> Result<Self> {
        if !value.is_finite() {
            return Err(AtsError::InvalidArgument(format!(
                "predicate threshold must be finite, got {value}"
            )));
        }
        Ok(Predicate { op, value })
    }

    /// Evaluate against one cell value. NaN compares false everywhere.
    pub fn eval(&self, v: f64) -> bool {
        match self.op {
            CmpOp::Gt => v > self.value,
            CmpOp::Ge => v >= self.value,
            CmpOp::Lt => v < self.value,
            CmpOp::Le => v <= self.value,
            CmpOp::Eq => v == self.value,
        }
    }

    /// Classify a tile from its exact `[min, max]` bounds. NaN bounds
    /// (a poisoned tile) classify `Maybe`: every comparison below is
    /// false on NaN, so neither proof branch can fire.
    pub fn classify(&self, min: f64, max: f64) -> TileTruth {
        let x = self.value;
        let (all, none) = match self.op {
            CmpOp::Gt => (min > x, max <= x),
            CmpOp::Ge => (min >= x, max < x),
            CmpOp::Lt => (max < x, min >= x),
            CmpOp::Le => (max <= x, min > x),
            CmpOp::Eq => (min == x && max == x, x < min || x > max),
        };
        if all {
            TileTruth::True
        } else if none {
            TileTruth::False
        } else {
            TileTruth::Maybe
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "value {} {}", self.op.symbol(), self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(op: CmpOp, x: f64) -> Predicate {
        Predicate::new(op, x).unwrap()
    }

    #[test]
    fn eval_matches_operator_semantics() {
        assert!(p(CmpOp::Gt, 1.0).eval(1.5));
        assert!(!p(CmpOp::Gt, 1.0).eval(1.0));
        assert!(p(CmpOp::Ge, 1.0).eval(1.0));
        assert!(p(CmpOp::Lt, 1.0).eval(0.5));
        assert!(!p(CmpOp::Lt, 1.0).eval(1.0));
        assert!(p(CmpOp::Le, 1.0).eval(1.0));
        assert!(p(CmpOp::Eq, -2.5).eval(-2.5));
        assert!(!p(CmpOp::Eq, -2.5).eval(2.5));
        // NaN fails every operator.
        for op in [CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le, CmpOp::Eq] {
            assert!(!p(op, 0.0).eval(f64::NAN), "{op:?}");
        }
    }

    /// classify() must agree with brute-force evaluation over any values
    /// inside the bounds: `True` only if *all* candidate values pass,
    /// `False` only if *none* does.
    #[test]
    fn classification_is_sound_against_brute_force() {
        let bounds = [(-2.0, -1.0), (-1.0, 1.0), (1.0, 1.0), (0.5, 3.5)];
        let thresholds = [-2.0, -1.5, -1.0, 0.0, 0.5, 1.0, 2.0, 3.5, 4.0];
        let ops = [CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le, CmpOp::Eq];
        for &(lo, hi) in &bounds {
            // Candidate cell values: the bounds and points between/around.
            let probes: Vec<f64> = vec![lo, hi, (lo + hi) / 2.0, lo + 1e-9, hi - 1e-9]
                .into_iter()
                .filter(|v| *v >= lo && *v <= hi)
                .collect();
            for &x in &thresholds {
                for &op in &ops {
                    let pred = p(op, x);
                    match pred.classify(lo, hi) {
                        TileTruth::True => {
                            assert!(
                                probes.iter().all(|&v| pred.eval(v)),
                                "[{lo},{hi}] {op:?} {x}: True but a probe fails"
                            );
                        }
                        TileTruth::False => {
                            assert!(
                                probes.iter().all(|&v| !pred.eval(v)),
                                "[{lo},{hi}] {op:?} {x}: False but a probe passes"
                            );
                        }
                        TileTruth::Maybe => {}
                    }
                }
            }
        }
    }

    #[test]
    fn classify_proves_when_bounds_allow() {
        assert_eq!(p(CmpOp::Gt, 0.0).classify(1.0, 5.0), TileTruth::True);
        assert_eq!(p(CmpOp::Gt, 5.0).classify(1.0, 5.0), TileTruth::False);
        assert_eq!(p(CmpOp::Gt, 3.0).classify(1.0, 5.0), TileTruth::Maybe);
        assert_eq!(p(CmpOp::Eq, 2.0).classify(2.0, 2.0), TileTruth::True);
        assert_eq!(p(CmpOp::Eq, 2.0).classify(3.0, 9.0), TileTruth::False);
        assert_eq!(p(CmpOp::Eq, 2.0).classify(1.0, 3.0), TileTruth::Maybe);
    }

    #[test]
    fn nan_bounds_classify_maybe() {
        for op in [CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le, CmpOp::Eq] {
            let pred = p(op, 0.0);
            assert_eq!(pred.classify(f64::NAN, f64::NAN), TileTruth::Maybe);
            assert_eq!(pred.classify(f64::NAN, 1.0), TileTruth::Maybe);
        }
    }

    #[test]
    fn non_finite_thresholds_rejected() {
        assert!(Predicate::new(CmpOp::Gt, f64::NAN).is_err());
        assert!(Predicate::new(CmpOp::Lt, f64::INFINITY).is_err());
    }

    #[test]
    fn operator_parsing_roundtrips() {
        for (tok, op) in [
            (">", CmpOp::Gt),
            (">=", CmpOp::Ge),
            ("<", CmpOp::Lt),
            ("<=", CmpOp::Le),
            ("=", CmpOp::Eq),
        ] {
            assert_eq!(CmpOp::parse(tok).unwrap(), op);
            assert_eq!(op.symbol(), tok);
        }
        assert_eq!(CmpOp::parse("==").unwrap(), CmpOp::Eq);
        assert!(CmpOp::parse("!=").is_err());
        assert_eq!(p(CmpOp::Ge, 1.5).to_string(), "value >= 1.5");
    }
}
