//! The query engine: cell and aggregate queries over a compressed matrix.
//!
//! §1 names the two query classes this system must serve:
//!
//! - "queries on specific cells of the data matrix" — answered by one
//!   `O(k)` reconstruction (plus, for SVDD, one delta probe);
//! - "aggregate queries on selected rows and columns" — an aggregate
//!   function `f()` (`sum()`, `avg()`, `stddev()`, …, §5.2) folded over
//!   every reconstructed cell of a [`Selection`].
//!
//! The engine reconstructs whole rows where it can (one `U`-row fetch
//! amortized over all selected columns) rather than per-cell.

use crate::predicate::{Predicate, TileTruth};
use crate::selection::Selection;
use ats_common::{AtsError, OnlineStats, Result};
use ats_compress::CompressedMatrix;
use ats_linalg::Matrix;
use ats_storage::ShardSynopsis;
use std::sync::Arc;

/// Aggregate functions supported by [`QueryEngine::aggregate`] (the
/// paper's `f()`, §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFn {
    /// Sum of the selected cells.
    Sum,
    /// Arithmetic mean of the selected cells.
    Avg,
    /// Number of selected cells.
    Count,
    /// Minimum cell value.
    Min,
    /// Maximum cell value.
    Max,
    /// Population standard deviation of the selected cells.
    StdDev,
}

impl AggregateFn {
    /// All supported functions (handy for exhaustive experiment sweeps).
    pub const ALL: [AggregateFn; 6] = [
        AggregateFn::Sum,
        AggregateFn::Avg,
        AggregateFn::Count,
        AggregateFn::Min,
        AggregateFn::Max,
        AggregateFn::StdDev,
    ];

    /// Short name for experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFn::Sum => "sum",
            AggregateFn::Avg => "avg",
            AggregateFn::Count => "count",
            AggregateFn::Min => "min",
            AggregateFn::Max => "max",
            AggregateFn::StdDev => "stddev",
        }
    }

    fn finish(&self, stats: &OnlineStats) -> Result<f64> {
        // Every aggregate of zero cells is rejected, not defaulted: Min/Max
        // have no identity, and a silent 0.0 from Sum/Avg/StdDev is
        // indistinguishable from real data.
        ensure_nonempty(stats)?;
        Ok(match self {
            AggregateFn::Sum => stats.sum(),
            AggregateFn::Avg => stats.mean(),
            AggregateFn::Count => stats.count() as f64,
            AggregateFn::Min => stats.min(),
            AggregateFn::Max => stats.max(),
            AggregateFn::StdDev => stats.population_std_dev(),
        })
    }
}

/// Reject aggregates over empty selections: `min()`/`max()` of nothing has
/// no value, and returning a default `0.0` (the old behavior) silently
/// fabricated data for every function.
fn ensure_nonempty(stats: &OnlineStats) -> Result<()> {
    if stats.count() == 0 {
        return Err(AtsError::InvalidArgument(
            "aggregate over an empty selection (0 cells) is undefined".into(),
        ));
    }
    Ok(())
}

/// How a [`QueryEngine`] holds its matrix: borrowed for the classic
/// one-shot CLI/experiment path, or behind an `Arc` so the engine itself
/// is `'static`, `Clone`, and shareable across server threads.
///
/// Reconstruction is read-only ([`CompressedMatrix`] is `Send + Sync` by
/// trait bound; the paged store keeps its interior mutability behind the
/// buffer-pool mutex and atomic I/O counters), so both shapes execute the
/// same code with the same determinism guarantees.
#[derive(Clone)]
pub(crate) enum MatrixHandle<'a> {
    /// Borrow — the engine lives no longer than the matrix.
    Borrowed(&'a dyn CompressedMatrix),
    /// Shared ownership — the engine can outlive the creating scope and
    /// hop across threads (the `ats serve` daemon path).
    Shared(Arc<dyn CompressedMatrix>),
}

/// A query engine over any compressed matrix.
#[derive(Clone)]
pub struct QueryEngine<'a> {
    pub(crate) handle: MatrixHandle<'a>,
    pub(crate) threads: usize,
    /// Whether `where` scans consult the store's zone-map synopses to
    /// prune tiles. Defaults on (`ATS_TEST_SYNOPSIS=off` flips the
    /// default for CI's exact-scan leg); [`QueryEngine::with_synopsis`]
    /// overrides per engine. Pruning never changes results — only which
    /// tiles are reconstructed — so this knob exists for fallback
    /// pinning and benchmarks, not correctness.
    pub(crate) synopsis: bool,
}

/// Default for the synopsis-pruning knob: on, unless the environment
/// pins the exact-scan fallback (`ATS_TEST_SYNOPSIS=off`).
fn synopsis_default() -> bool {
    std::env::var("ATS_TEST_SYNOPSIS").map_or(true, |v| v != "off")
}

/// Rows fetched per [`CompressedMatrix::rows_into`] call by the dense
/// aggregate scan — two kernel blocks ([`ats_linalg::kernels::BLOCK_ROWS`])
/// per fetch so sharded stores amortize routing without growing the scratch
/// buffer past a few KiB.
pub(crate) const AGG_BLOCK_ROWS: usize = 8;

impl<'a> QueryEngine<'a> {
    /// Wrap a compressed matrix (single-threaded scans).
    pub fn new(matrix: &'a dyn CompressedMatrix) -> Self {
        QueryEngine {
            handle: MatrixHandle::Borrowed(matrix),
            threads: 1,
            synopsis: synopsis_default(),
        }
    }

    /// Wrap a shared compressed matrix. The returned engine is
    /// `'static`, `Send + Sync`, and `Clone` — every connection thread
    /// of a long-lived server can hold its own cheap handle to the same
    /// store and page pool.
    pub fn shared(matrix: Arc<dyn CompressedMatrix>) -> QueryEngine<'static> {
        QueryEngine {
            handle: MatrixHandle::Shared(matrix),
            threads: 1,
            synopsis: synopsis_default(),
        }
    }

    /// The underlying matrix, whichever way it is held.
    pub(crate) fn matrix(&self) -> &dyn CompressedMatrix {
        match &self.handle {
            MatrixHandle::Borrowed(m) => *m,
            MatrixHandle::Shared(m) => m.as_ref(),
        }
    }

    /// Use up to `threads` workers for aggregate scans. Selected rows are
    /// split into contiguous chunks, each folded into a private
    /// [`OnlineStats`] (reconstruction is read-only — `CompressedMatrix`
    /// is `Sync`), and the partials are merged in chunk order, so results
    /// are deterministic for a given thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enable or disable zone-map pruning for `where` scans (see the
    /// [`QueryEngine::aggregate_where`] docs). Off forces the exact
    /// tile-by-tile scan even when the store carries synopses — the
    /// fallback legacy stores always take. Results are bitwise
    /// identical either way.
    pub fn with_synopsis(mut self, on: bool) -> Self {
        self.synopsis = on;
        self
    }

    /// Number of rows of the underlying matrix.
    pub fn rows(&self) -> usize {
        self.matrix().rows()
    }

    /// Number of columns of the underlying matrix.
    pub fn cols(&self) -> usize {
        self.matrix().cols()
    }

    /// Cell query: the reconstructed value at `(i, j)`.
    pub fn cell(&self, i: usize, j: usize) -> Result<f64> {
        self.matrix().cell(i, j)
    }

    /// Aggregate query over a selection.
    ///
    /// Reconstructs each selected row once and folds the selected columns
    /// into a single-pass accumulator (or one per worker — see
    /// [`QueryEngine::with_threads`]).
    pub fn aggregate(&self, sel: &Selection, f: AggregateFn) -> Result<f64> {
        let m = self.matrix().cols();
        sel.validate(self.matrix().rows(), m)?;
        let cols: Vec<usize> = sel.cols.to_vec(m);
        // Heuristic: if most of the row is selected, reconstruct the whole
        // row; otherwise reconstruct only the selected cells.
        let dense_cols = cols.len() * 3 >= m;
        let stats = self.selection_stats(sel, dense_cols)?;
        f.finish(&stats)
    }

    /// Evaluate every aggregate function at once over one selection scan.
    /// Errors on an empty selection, like [`QueryEngine::aggregate`].
    pub fn aggregate_all(&self, sel: &Selection) -> Result<AggregateRow> {
        let stats = self.selection_stats(sel, true)?;
        ensure_nonempty(&stats)?;
        Ok(AggregateRow {
            sum: stats.sum(),
            avg: stats.mean(),
            count: stats.count(),
            min: stats.min(),
            max: stats.max(),
            stddev: stats.population_std_dev(),
        })
    }

    /// Fold the selected cells into one [`OnlineStats`], splitting the
    /// selected rows across `self.threads` workers when worthwhile.
    ///
    /// Over a time-blocked matrix ([`CompressedMatrix::time_block_starts`]
    /// returns more than one entry) the selected *columns* are first
    /// grouped by owning block: each overlapping block folds its columns
    /// into a private accumulator through that block's own decomposition
    /// (taking the shard fan-out below inside the block), and the
    /// per-block partials merge in ascending block order. Blocks whose
    /// column range the selection never touches see no I/O at all — the
    /// pruning the per-block `IoStats` assertions pin down.
    ///
    /// Over a sharded matrix ([`CompressedMatrix::shard_starts`] returns
    /// more than one entry) the scan fans out by *owning shard* instead
    /// of by arbitrary row chunk: each shard's selected rows fold into
    /// that shard's private accumulator and the partials merge in shard
    /// order — so the result is one deterministic value for a given
    /// shard layout, independent of the thread count.
    fn selection_stats(&self, sel: &Selection, dense_cols: bool) -> Result<OnlineStats> {
        let (n, m) = (self.matrix().rows(), self.matrix().cols());
        sel.validate(n, m)?;
        let cols: Vec<usize> = sel.cols.to_vec(m);
        let rows: Vec<usize> = sel.rows.iter(n).collect();
        let tstarts = self.matrix().time_block_starts();
        if tstarts.len() > 1 {
            return self.timeblocked_stats(&rows, &cols, &tstarts);
        }
        self.stats_dispatch(&rows, &cols, dense_cols)
    }

    /// Shard/thread dispatch over one decomposition: the body of
    /// [`QueryEngine::selection_stats`] once the time-block routing (if
    /// any) has already rebased the columns.
    fn stats_dispatch(
        &self,
        rows: &[usize],
        cols: &[usize],
        dense_cols: bool,
    ) -> Result<OnlineStats> {
        let starts = self.matrix().shard_starts();
        if starts.len() > 1 {
            return self.sharded_stats(rows, cols, dense_cols, &starts);
        }
        if self.threads <= 1 || rows.len() < 2 * self.threads {
            return self.stats_over_rows(rows, cols, dense_cols);
        }
        let chunk = rows.len().div_ceil(self.threads);
        let shards: Vec<Result<OnlineStats>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = rows
                .chunks(chunk)
                .map(|rows| scope.spawn(move |_| self.stats_over_rows(rows, cols, dense_cols)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(AtsError::internal("selection stats worker panicked")),
                })
                .collect()
        })
        .map_err(|_| AtsError::internal("selection stats thread scope panicked"))?;
        // Merge in chunk order (Chan et al. combine): deterministic for a
        // given thread count.
        let mut stats = OnlineStats::new();
        for shard in shards {
            stats.merge(&shard?);
        }
        Ok(stats)
    }

    /// Time-block fan-out kernel: group the selected columns by owning
    /// block, fold each overlapping block's columns (rebased to
    /// block-local indices) through that block's own decomposition —
    /// re-entering [`QueryEngine::stats_dispatch`], so the block's own
    /// shard fan-out and threading apply inside it — and merge the
    /// per-block partials in ascending block order. Blocks the
    /// selection does not overlap are never touched: their `U`/delta
    /// pages see zero I/O, which the per-block `IoStats` tests assert.
    fn timeblocked_stats(
        &self,
        rows: &[usize],
        cols: &[usize],
        tstarts: &[usize],
    ) -> Result<OnlineStats> {
        let m = self.matrix().cols();
        // tstarts is ascending with tstarts[0] == 0: column j belongs
        // to the last block whose start is ≤ j.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); tstarts.len()];
        for &j in cols {
            let idx = match tstarts.binary_search(&j) {
                Ok(p) => p,
                Err(p) => p.saturating_sub(1),
            };
            let start = tstarts.get(idx).copied().unwrap_or(0);
            if let Some(g) = groups.get_mut(idx) {
                g.push(j - start);
            }
        }
        let mut stats = OnlineStats::new();
        for (b, local) in groups.iter().enumerate() {
            if local.is_empty() {
                continue;
            }
            let block = self.matrix().time_block(b).ok_or_else(|| {
                AtsError::internal(format!("time block {b} advertised but not served"))
            })?;
            let width = tstarts
                .get(b + 1)
                .copied()
                .unwrap_or(m)
                .saturating_sub(tstarts.get(b).copied().unwrap_or(0));
            // Re-evaluate the dense-row heuristic against the block's
            // own width: a range covering most of one block should
            // reconstruct whole block rows even when it is a sliver of
            // the full matrix.
            let dense = local.len() * 3 >= width;
            let sub = QueryEngine {
                handle: MatrixHandle::Borrowed(block),
                threads: self.threads,
                synopsis: self.synopsis,
            };
            stats.merge(&sub.stats_dispatch(rows, local, dense)?);
        }
        Ok(stats)
    }

    /// Shard fan-out kernel: group the selected rows by owning shard,
    /// fold each group into a private accumulator (up to `self.threads`
    /// groups scanned concurrently, in waves), and merge the per-shard
    /// partials in ascending shard order.
    fn sharded_stats(
        &self,
        rows: &[usize],
        cols: &[usize],
        dense_cols: bool,
        starts: &[usize],
    ) -> Result<OnlineStats> {
        // starts is ascending with starts[0] == 0, so every row lands in
        // the last shard whose start is ≤ the row.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); starts.len()];
        for &i in rows {
            let idx = match starts.binary_search(&i) {
                Ok(p) => p,
                Err(p) => p.saturating_sub(1),
            };
            groups[idx].push(i);
        }
        let mut partials: Vec<OnlineStats> = Vec::with_capacity(groups.len());
        if self.threads <= 1 {
            for g in &groups {
                partials.push(self.stats_over_rows(g, cols, dense_cols)?);
            }
        } else {
            for wave in groups.chunks(self.threads) {
                let wave_stats: Vec<Result<OnlineStats>> = crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = wave
                        .iter()
                        .map(|g| {
                            let cols = &cols;
                            scope.spawn(move |_| self.stats_over_rows(g, cols, dense_cols))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(r) => r,
                            Err(_) => Err(AtsError::internal("shard stats worker panicked")),
                        })
                        .collect()
                })
                .map_err(|_| AtsError::internal("shard stats thread scope panicked"))?;
                for s in wave_stats {
                    partials.push(s?);
                }
            }
        }
        let mut stats = OnlineStats::new();
        for p in &partials {
            stats.merge(p);
        }
        Ok(stats)
    }

    /// Serial scan kernel: fold the selected columns of `rows` into one
    /// accumulator. Each caller (worker) brings its own scratch.
    ///
    /// The dense path fetches [`AGG_BLOCK_ROWS`] rows per
    /// [`CompressedMatrix::rows_into`] call, so implementations with a
    /// blocked multi-row kernel reconstruct several rows per sweep over
    /// `V`. Values are still pushed row by row in ascending selected-column
    /// order — the same accumulation sequence as the one-row-at-a-time
    /// scan, so results are bitwise unchanged.
    fn stats_over_rows(
        &self,
        rows: &[usize],
        cols: &[usize],
        dense_cols: bool,
    ) -> Result<OnlineStats> {
        let mut stats = OnlineStats::new();
        let m = self.matrix().cols();
        if dense_cols && m > 0 {
            let mut block = vec![0.0f64; AGG_BLOCK_ROWS * m];
            for rchunk in rows.chunks(AGG_BLOCK_ROWS) {
                let out = &mut block[..rchunk.len() * m];
                self.matrix().rows_into(rchunk, out)?;
                for row_buf in out.chunks(m) {
                    for &j in cols {
                        stats.push(row_buf[j]);
                    }
                }
            }
        } else {
            for &i in rows {
                for &j in cols {
                    stats.push(self.matrix().cell(i, j)?);
                }
            }
        }
        Ok(stats)
    }

    /// Predicate-filtered aggregate: fold `f` over the selected cells
    /// whose reconstructed value satisfies `pred`.
    ///
    /// When the store carries zone-map synopses (and pruning is on —
    /// [`QueryEngine::with_synopsis`]), each row's column tiles are
    /// classified three-valued against the predicate before any
    /// reconstruction: tiles proved `False` are skipped without touching
    /// `U` (a row all of whose selected tiles are `False` costs zero
    /// I/O), tiles proved `True` feed `count` straight from the number
    /// of selected cells, and only `Maybe` tiles — plus `True` tiles of
    /// value-carrying aggregates, which need the actual values — are
    /// reconstructed and tested cell by cell.
    ///
    /// Pruned and exact scans traverse matching cells in the identical
    /// order (rows in selection order, columns ascending within each
    /// row, partials merged in time-block → shard → chunk order), so
    /// the result is **bitwise equal** with pruning on, off, or absent,
    /// at any shards × time-blocks × threads combination. `Sum`, `Avg`,
    /// `Min`, `Max`, and `StdDev` deliberately never substitute a
    /// tile's stored `(sum, count)` even when the tile is all-`True`:
    /// the tile sum was accumulated in tile order, not scan order, and
    /// would re-associate the floats.
    ///
    /// Zero matching cells is an error for every aggregate except
    /// `Count`, which answers `0` — an empty *match set* is an answer,
    /// unlike an empty selection, which is rejected up front.
    pub fn aggregate_where(
        &self,
        sel: &Selection,
        f: AggregateFn,
        pred: &Predicate,
    ) -> Result<f64> {
        let (n, m) = (self.matrix().rows(), self.matrix().cols());
        sel.validate(n, m)?;
        let rows: Vec<usize> = sel.rows.iter(n).collect();
        let cols: Vec<usize> = sel.cols.to_vec(m);
        if rows.is_empty() || cols.is_empty() {
            return Err(AtsError::InvalidArgument(
                "aggregate over an empty selection (0 cells) is undefined".into(),
            ));
        }
        let count_only = matches!(f, AggregateFn::Count);
        let tstarts = self.matrix().time_block_starts();
        let ws = if tstarts.len() > 1 {
            self.timeblocked_where(&rows, &cols, pred, count_only, &tstarts)?
        } else {
            self.where_dispatch(&rows, &cols, pred, count_only)?
        };
        match f {
            AggregateFn::Count => {
                let total = ws
                    .stats
                    .count()
                    .checked_add(ws.proved)
                    .ok_or_else(|| AtsError::internal("where-count overflows u64"))?;
                Ok(total as f64)
            }
            _ => {
                if ws.stats.count() == 0 {
                    return Err(AtsError::InvalidArgument(format!(
                        "no selected cell satisfies `{pred}`; {}() over an empty match set \
                         is undefined (count is defined, and 0)",
                        f.name()
                    )));
                }
                f.finish(&ws.stats)
            }
        }
    }

    /// Time-block fan-out for `where` scans: the predicate-filtered
    /// sibling of [`QueryEngine::timeblocked_stats`]. Each overlapping
    /// block classifies against its *own* synopses (tile columns are
    /// block-local), and per-block partials merge in block order.
    fn timeblocked_where(
        &self,
        rows: &[usize],
        cols: &[usize],
        pred: &Predicate,
        count_only: bool,
        tstarts: &[usize],
    ) -> Result<WhereStats> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); tstarts.len()];
        for &j in cols {
            let idx = match tstarts.binary_search(&j) {
                Ok(p) => p,
                Err(p) => p.saturating_sub(1),
            };
            let start = tstarts.get(idx).copied().unwrap_or(0);
            if let Some(g) = groups.get_mut(idx) {
                g.push(j - start);
            }
        }
        let mut ws = WhereStats::new();
        for (b, local) in groups.iter().enumerate() {
            if local.is_empty() {
                continue;
            }
            let block = self.matrix().time_block(b).ok_or_else(|| {
                AtsError::internal(format!("time block {b} advertised but not served"))
            })?;
            let sub = QueryEngine {
                handle: MatrixHandle::Borrowed(block),
                threads: self.threads,
                synopsis: self.synopsis,
            };
            ws.merge(&sub.where_dispatch(rows, local, pred, count_only)?);
        }
        Ok(ws)
    }

    /// Shard/thread dispatch for `where` scans over one decomposition,
    /// mirroring [`QueryEngine::stats_dispatch`]: fan out by owning
    /// shard when the matrix is sharded (each shard classifies against
    /// its own synopsis), otherwise chunk the selected rows across
    /// threads, and merge partials in shard/chunk order.
    fn where_dispatch(
        &self,
        rows: &[usize],
        cols: &[usize],
        pred: &Predicate,
        count_only: bool,
    ) -> Result<WhereStats> {
        let starts = self.matrix().shard_starts();
        if starts.len() > 1 {
            return self.sharded_where(rows, cols, pred, count_only, &starts);
        }
        let syn = self.pruning_synopsis(0, 0);
        if self.threads <= 1 || rows.len() < 2 * self.threads {
            return self.where_over_rows(rows, cols, pred, count_only, syn);
        }
        let chunk = rows.len().div_ceil(self.threads);
        let parts: Vec<Result<WhereStats>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = rows
                .chunks(chunk)
                .map(|rows| {
                    scope.spawn(move |_| self.where_over_rows(rows, cols, pred, count_only, syn))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err(AtsError::internal("where scan worker panicked")),
                })
                .collect()
        })
        .map_err(|_| AtsError::internal("where scan thread scope panicked"))?;
        let mut ws = WhereStats::new();
        for p in parts {
            ws.merge(&p?);
        }
        Ok(ws)
    }

    /// Shard fan-out for `where` scans: group the selected rows by
    /// owning shard, scan each group against that shard's synopsis (up
    /// to `self.threads` shards concurrently, in waves), and merge the
    /// per-shard partials in ascending shard order.
    fn sharded_where(
        &self,
        rows: &[usize],
        cols: &[usize],
        pred: &Predicate,
        count_only: bool,
        starts: &[usize],
    ) -> Result<WhereStats> {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); starts.len()];
        for &i in rows {
            let idx = match starts.binary_search(&i) {
                Ok(p) => p,
                Err(p) => p.saturating_sub(1),
            };
            groups[idx].push(i);
        }
        let mut partials: Vec<WhereStats> = Vec::with_capacity(groups.len());
        if self.threads <= 1 {
            for (s, g) in groups.iter().enumerate() {
                let syn = self.pruning_synopsis(s, starts.get(s).copied().unwrap_or(0));
                partials.push(self.where_over_rows(g, cols, pred, count_only, syn)?);
            }
        } else {
            let indexed: Vec<(usize, &Vec<usize>)> = groups.iter().enumerate().collect();
            for wave in indexed.chunks(self.threads) {
                let wave_stats: Vec<Result<WhereStats>> = crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = wave
                        .iter()
                        .map(|&(s, g)| {
                            let cols = &cols;
                            let syn = self.pruning_synopsis(s, starts.get(s).copied().unwrap_or(0));
                            scope.spawn(move |_| {
                                self.where_over_rows(g, cols, pred, count_only, syn)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(r) => r,
                            Err(_) => Err(AtsError::internal("where shard worker panicked")),
                        })
                        .collect()
                })
                .map_err(|_| AtsError::internal("where shard thread scope panicked"))?;
                for s in wave_stats {
                    partials.push(s?);
                }
            }
        }
        let mut ws = WhereStats::new();
        for p in &partials {
            ws.merge(p);
        }
        Ok(ws)
    }

    /// The synopsis to prune shard `shard` with (whose rows start at
    /// absolute row `start`), or `None` when pruning is off or the
    /// store carries none — the exact-scan fallback either way.
    fn pruning_synopsis(&self, shard: usize, start: usize) -> Option<(&ShardSynopsis, usize)> {
        if !self.synopsis {
            return None;
        }
        self.matrix().shard_synopsis(shard).map(|s| (s, start))
    }

    /// Serial `where` kernel: scan the selected columns of `rows`,
    /// pushing values that satisfy `pred` into one accumulator.
    ///
    /// With a synopsis, each row's tile band (`local row / ROW_BLOCK`)
    /// is classified once and reused for the band's rows: selected
    /// columns in `False` tiles are dropped before reconstruction — a
    /// row left with nothing to fetch does **zero** I/O — and, when
    /// `count_only`, columns in `True` tiles are tallied without
    /// reconstruction. Fetched values are always tested through
    /// [`Predicate::eval`] (for a `True` tile the bounds guarantee the
    /// test passes), so the pushed value sequence is identical to the
    /// no-synopsis scan and results stay bitwise equal.
    ///
    /// Defensive: rows outside the synopsis grid (a hand-rolled
    /// [`CompressedMatrix`] lying about its geometry — disk stores
    /// cross-check at open) classify `Maybe`, degrading to the exact
    /// scan, never to a wrong answer.
    fn where_over_rows(
        &self,
        rows: &[usize],
        cols: &[usize],
        pred: &Predicate,
        count_only: bool,
        syn: Option<(&ShardSynopsis, usize)>,
    ) -> Result<WhereStats> {
        let mut ws = WhereStats::new();
        let mut fetch: Vec<usize> = Vec::with_capacity(cols.len());
        let mut vals = vec![0.0f64; cols.len()];
        // The classification of the current row band, reused while
        // consecutive rows stay in the same band.
        let mut band: Option<(usize, Vec<TileTruth>)> = None;
        for &i in rows {
            fetch.clear();
            let mut proved = 0u64;
            match syn {
                Some((s, start)) => {
                    let tr = i.checked_sub(start).map(|lr| lr / s.row_block());
                    let classes: Option<&[TileTruth]> = match tr {
                        Some(tr) if tr < s.tile_rows() => {
                            if band.as_ref().is_none_or(|&(b, _)| b != tr) {
                                let row_classes = (0..s.tile_cols())
                                    .map(|tc| {
                                        s.tile(tr, tc).map_or(TileTruth::Maybe, |t| {
                                            pred.classify(t.min, t.max)
                                        })
                                    })
                                    .collect();
                                band = Some((tr, row_classes));
                            }
                            band.as_ref().map(|(_, c)| c.as_slice())
                        }
                        _ => None,
                    };
                    for &j in cols {
                        let truth = classes
                            .and_then(|c| c.get(j / s.col_block()))
                            .copied()
                            .unwrap_or(TileTruth::Maybe);
                        match truth {
                            TileTruth::False => {}
                            TileTruth::True if count_only => proved += 1,
                            _ => fetch.push(j),
                        }
                    }
                }
                None => fetch.extend_from_slice(cols),
            }
            ws.proved += proved;
            if fetch.is_empty() {
                continue; // every selected tile proved: zero I/O for this row
            }
            let out = vals
                .get_mut(..fetch.len())
                .ok_or_else(|| AtsError::internal("where scan scratch undersized"))?;
            self.matrix().cells_in_row(i, &fetch, out)?;
            for &v in out.iter() {
                if pred.eval(v) {
                    ws.stats.push(v);
                }
            }
        }
        Ok(ws)
    }
}

/// Accumulator of a `where` scan: the Welford fold over reconstructed
/// matching cells, plus the cells *proved* matching by all-`True` tiles
/// that a `count`-only scan never reconstructed.
#[derive(Debug, Clone)]
struct WhereStats {
    stats: OnlineStats,
    proved: u64,
}

impl WhereStats {
    fn new() -> Self {
        WhereStats {
            stats: OnlineStats::new(),
            proved: 0,
        }
    }

    fn merge(&mut self, other: &WhereStats) {
        self.stats.merge(&other.stats);
        self.proved += other.proved;
    }
}

/// All aggregates of one selection, computed in a single scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateRow {
    /// Sum of selected cells.
    pub sum: f64,
    /// Mean of selected cells.
    pub avg: f64,
    /// Number of selected cells.
    pub count: u64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

/// Ground truth: evaluate an aggregate directly on an uncompressed
/// matrix (used by the experiments to compute `Q_err`). Rejects empty
/// selections exactly like [`QueryEngine::aggregate`], so engine-vs-exact
/// comparisons agree on the error case too.
pub fn aggregate_exact(x: &Matrix, sel: &Selection, f: AggregateFn) -> Result<f64> {
    let (n, m) = x.shape();
    sel.validate(n, m)?;
    let cols: Vec<usize> = sel.cols.to_vec(m);
    let mut stats = OnlineStats::new();
    for i in sel.rows.iter(n) {
        let row = x.row(i);
        for &j in &cols {
            stats.push(row[j]);
        }
    }
    f.finish(&stats)
}

/// An exact (lossless, in-memory) [`CompressedMatrix`] — the identity
/// "compression". Useful as a ground-truth adapter and in tests.
#[derive(Debug, Clone)]
pub struct ExactMatrix(pub Matrix);

impl CompressedMatrix for ExactMatrix {
    fn rows(&self) -> usize {
        self.0.rows()
    }
    fn cols(&self) -> usize {
        self.0.cols()
    }
    fn cell(&self, i: usize, j: usize) -> Result<f64> {
        self.0.get(i, j)
    }
    fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
        if i >= self.0.rows() {
            return Err(AtsError::oob("row", i, self.0.rows()));
        }
        if out.len() != self.0.cols() {
            return Err(AtsError::dims(
                "ExactMatrix::row_into",
                (1, out.len()),
                (1, self.0.cols()),
            ));
        }
        out.copy_from_slice(self.0.row(i));
        Ok(())
    }
    fn storage_bytes(&self) -> usize {
        self.0.rows() * self.0.cols() * crate::engine::BYTES_PER_NUMBER_LOCAL
    }
    fn method_name(&self) -> &'static str {
        "exact"
    }
}

pub(crate) const BYTES_PER_NUMBER_LOCAL: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::Axis;

    fn x() -> Matrix {
        Matrix::from_rows(vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap()
    }

    #[test]
    fn cell_query() {
        let e = ExactMatrix(x());
        let q = QueryEngine::new(&e);
        assert_eq!(q.cell(1, 2).unwrap(), 6.0);
        assert!(q.cell(3, 0).is_err());
    }

    #[test]
    fn aggregates_over_all() {
        let e = ExactMatrix(x());
        let q = QueryEngine::new(&e);
        let sel = Selection::all();
        assert_eq!(q.aggregate(&sel, AggregateFn::Sum).unwrap(), 45.0);
        assert_eq!(q.aggregate(&sel, AggregateFn::Avg).unwrap(), 5.0);
        assert_eq!(q.aggregate(&sel, AggregateFn::Count).unwrap(), 9.0);
        assert_eq!(q.aggregate(&sel, AggregateFn::Min).unwrap(), 1.0);
        assert_eq!(q.aggregate(&sel, AggregateFn::Max).unwrap(), 9.0);
        let sd = q.aggregate(&sel, AggregateFn::StdDev).unwrap();
        assert!((sd - (60.0f64 / 9.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn aggregates_over_subrectangle() {
        let e = ExactMatrix(x());
        let q = QueryEngine::new(&e);
        let sel = Selection {
            rows: Axis::Range(1, 3),
            cols: Axis::set(vec![0, 2]),
        };
        // cells: 4, 6, 7, 9
        assert_eq!(q.aggregate(&sel, AggregateFn::Sum).unwrap(), 26.0);
        assert_eq!(q.aggregate(&sel, AggregateFn::Avg).unwrap(), 6.5);
        assert_eq!(q.aggregate(&sel, AggregateFn::Min).unwrap(), 4.0);
    }

    #[test]
    fn sparse_column_path_matches_dense() {
        // One selected column of a wide matrix exercises the per-cell path.
        let wide = Matrix::from_fn(5, 30, |i, j| (i * 30 + j) as f64);
        let e = ExactMatrix(wide.clone());
        let q = QueryEngine::new(&e);
        let sel = Selection::col(7);
        let got = q.aggregate(&sel, AggregateFn::Sum).unwrap();
        let expect: f64 = (0..5).map(|i| (i * 30 + 7) as f64).sum();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_selection_errors_for_every_aggregate() {
        let e = ExactMatrix(x());
        let q = QueryEngine::new(&e);
        // Empty in the row axis, and empty in the column axis.
        let empties = [
            Selection {
                rows: Axis::Range(1, 1),
                cols: Axis::All,
            },
            Selection {
                rows: Axis::All,
                cols: Axis::set(vec![]),
            },
        ];
        for sel in &empties {
            for f in AggregateFn::ALL {
                let err = q.aggregate(sel, f).unwrap_err();
                assert!(
                    matches!(err, AtsError::InvalidArgument(_)),
                    "{}: {err}",
                    f.name()
                );
            }
            assert!(q.aggregate_all(sel).is_err());
            for f in AggregateFn::ALL {
                assert!(aggregate_exact(&x(), sel, f).is_err(), "{}", f.name());
            }
        }
    }

    #[test]
    fn empty_selection_errors_on_threaded_and_sharded_paths() {
        // The guard must fire after the merge on every execution shape,
        // not just the serial monolithic scan.
        let m = bumpy(97, 17);
        let empty = Selection {
            rows: Axis::Range(50, 50),
            cols: Axis::All,
        };
        for threads in [1, 3, 8] {
            let e = ExactMatrix(m.clone());
            let q = QueryEngine::new(&e).with_threads(threads);
            assert!(q.aggregate(&empty, AggregateFn::Min).is_err());
            assert!(q.aggregate_all(&empty).is_err());
            let sharded = ShardedExact(m.clone(), vec![0, 32, 64]);
            let qs = QueryEngine::new(&sharded).with_threads(threads);
            assert!(qs.aggregate(&empty, AggregateFn::Max).is_err());
            assert!(qs.aggregate_all(&empty).is_err());
        }
    }

    #[test]
    fn invalid_selection_rejected() {
        let e = ExactMatrix(x());
        let q = QueryEngine::new(&e);
        let sel = Selection {
            rows: Axis::Set(vec![5]),
            cols: Axis::All,
        };
        assert!(q.aggregate(&sel, AggregateFn::Sum).is_err());
    }

    #[test]
    fn aggregate_all_consistent_with_individual() {
        let e = ExactMatrix(x());
        let q = QueryEngine::new(&e);
        let sel = Selection {
            rows: Axis::Range(0, 2),
            cols: Axis::Range(1, 3),
        };
        let all = q.aggregate_all(&sel).unwrap();
        assert_eq!(all.sum, q.aggregate(&sel, AggregateFn::Sum).unwrap());
        assert_eq!(all.avg, q.aggregate(&sel, AggregateFn::Avg).unwrap());
        assert_eq!(
            all.count as f64,
            q.aggregate(&sel, AggregateFn::Count).unwrap()
        );
        assert_eq!(all.min, q.aggregate(&sel, AggregateFn::Min).unwrap());
        assert_eq!(all.max, q.aggregate(&sel, AggregateFn::Max).unwrap());
        assert_eq!(all.stddev, q.aggregate(&sel, AggregateFn::StdDev).unwrap());
    }

    #[test]
    fn exact_aggregate_matches_engine_on_exact_matrix() {
        let m = x();
        let e = ExactMatrix(m.clone());
        let q = QueryEngine::new(&e);
        let sel = Selection {
            rows: Axis::set(vec![0, 2]),
            cols: Axis::Range(0, 2),
        };
        for f in AggregateFn::ALL {
            assert_eq!(
                q.aggregate(&sel, f).unwrap(),
                aggregate_exact(&m, &sel, f).unwrap(),
                "{}",
                f.name()
            );
        }
    }

    #[test]
    fn shared_engine_is_send_sync_clone_and_answers_identically() {
        // The serve daemon hands one engine to many threads: the shared
        // handle must be 'static + Send + Sync + Clone, and answer the
        // same bits as the borrowed engine over the same matrix.
        fn assert_shareable<T: Send + Sync + Clone + 'static>() {}
        assert_shareable::<QueryEngine<'static>>();
        let m = Arc::new(ExactMatrix(x()));
        let shared = QueryEngine::shared(m.clone());
        let borrowed = QueryEngine::new(m.as_ref());
        let sel = Selection::all();
        assert_eq!(
            shared.cell(1, 2).unwrap().to_bits(),
            borrowed.cell(1, 2).unwrap().to_bits()
        );
        for f in AggregateFn::ALL {
            assert_eq!(
                shared.aggregate(&sel, f).unwrap().to_bits(),
                borrowed.aggregate(&sel, f).unwrap().to_bits(),
                "{}",
                f.name()
            );
        }
        // Clones observe the same underlying store.
        let clone = shared.clone().with_threads(3);
        assert_eq!(clone.rows(), 3);
        let handle = std::thread::spawn(move || clone.cell(0, 0).unwrap());
        assert_eq!(handle.join().unwrap(), 1.0);
    }

    #[test]
    fn names() {
        assert_eq!(AggregateFn::Sum.name(), "sum");
        assert_eq!(AggregateFn::StdDev.name(), "stddev");
        assert_eq!(AggregateFn::ALL.len(), 6);
    }

    /// A matrix with enough irregularity that every aggregate is
    /// non-trivial, plus negative values and repeated extremes.
    fn bumpy(n: usize, m: usize) -> Matrix {
        Matrix::from_fn(n, m, |i, j| ((i * 31 + j * 7) % 23) as f64 - 11.0)
    }

    fn selections() -> Vec<Selection> {
        vec![
            Selection::all(),
            Selection {
                rows: Axis::Range(3, 90),
                cols: Axis::set(vec![0, 5, 16]),
            },
            Selection {
                rows: Axis::set(vec![0, 7, 13, 14, 15, 40, 96]),
                cols: Axis::Range(2, 17),
            },
            Selection::col(7),
        ]
    }

    #[test]
    fn threaded_aggregates_match_serial() {
        let e = ExactMatrix(bumpy(97, 17));
        let serial = QueryEngine::new(&e);
        for sel in selections() {
            for threads in [2, 3, 8, 64] {
                let par = QueryEngine::new(&e).with_threads(threads);
                for f in AggregateFn::ALL {
                    let a = serial.aggregate(&sel, f).unwrap();
                    let b = par.aggregate(&sel, f).unwrap();
                    match f {
                        // Order-independent folds must agree exactly.
                        AggregateFn::Count | AggregateFn::Min | AggregateFn::Max => {
                            assert_eq!(a, b, "{} threads={threads}", f.name())
                        }
                        // Welford merges reassociate floating point.
                        _ => assert!(
                            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                            "{} threads={threads}: {a} vs {b}",
                            f.name()
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn threaded_aggregate_all_matches_serial() {
        let e = ExactMatrix(bumpy(97, 17));
        let serial = QueryEngine::new(&e);
        for sel in selections() {
            let a = serial.aggregate_all(&sel).unwrap();
            for threads in [2, 5] {
                let b = QueryEngine::new(&e)
                    .with_threads(threads)
                    .aggregate_all(&sel)
                    .unwrap();
                assert_eq!(a.count, b.count);
                assert_eq!(a.min, b.min);
                assert_eq!(a.max, b.max);
                for (x, y) in [(a.sum, b.sum), (a.avg, b.avg), (a.stddev, b.stddev)] {
                    assert!((x - y).abs() <= 1e-9 * x.abs().max(1.0), "{x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn threaded_aggregate_equals_shard_merge_exactly() {
        // The parallel path must implement precisely "split the selected
        // rows into contiguous chunks, fold each into its own
        // OnlineStats, merge in chunk order" — reproduce that by hand
        // and demand bit-for-bit equality.
        let m = bumpy(67, 9);
        let e = ExactMatrix(m.clone());
        let sel = Selection {
            rows: Axis::Range(1, 60),
            cols: Axis::Range(0, 9),
        };
        let threads = 4;
        let rows: Vec<usize> = (1..60).collect();
        let chunk = rows.len().div_ceil(threads);
        let mut expect = OnlineStats::new();
        for shard_rows in rows.chunks(chunk) {
            let mut shard = OnlineStats::new();
            for &i in shard_rows {
                for j in 0..9 {
                    shard.push(m[(i, j)]);
                }
            }
            expect.merge(&shard);
        }
        let got = QueryEngine::new(&e)
            .with_threads(threads)
            .aggregate_all(&sel)
            .unwrap();
        assert_eq!(got.sum, expect.sum());
        assert_eq!(got.avg, expect.mean());
        assert_eq!(got.count, expect.count());
        assert_eq!(got.min, expect.min());
        assert_eq!(got.max, expect.max());
        assert_eq!(got.stddev, expect.population_std_dev());
    }

    /// The exact adapter wearing a shard layout: same cells, but
    /// `shard_starts` advertises row-range shards so the engine takes
    /// the fan-out path.
    struct ShardedExact(Matrix, Vec<usize>);

    impl CompressedMatrix for ShardedExact {
        fn rows(&self) -> usize {
            self.0.rows()
        }
        fn cols(&self) -> usize {
            self.0.cols()
        }
        fn cell(&self, i: usize, j: usize) -> Result<f64> {
            self.0.get(i, j)
        }
        fn storage_bytes(&self) -> usize {
            0
        }
        fn method_name(&self) -> &'static str {
            "sharded-exact"
        }
        fn shard_starts(&self) -> Vec<usize> {
            self.1.clone()
        }
    }

    #[test]
    fn sharded_aggregate_merges_in_shard_order_exactly() {
        // The fan-out path must implement precisely "group selected rows
        // by owning shard, fold each group, merge in shard order" —
        // reproduce that by hand and demand bit-for-bit equality, at
        // every thread count (the shard partition, not the thread count,
        // determines the merge tree).
        let m = bumpy(97, 17);
        let starts = vec![0usize, 32, 64];
        let e = ShardedExact(m.clone(), starts.clone());
        for sel in selections() {
            let rows: Vec<usize> = sel.rows.iter(97).collect();
            let cols: Vec<usize> = sel.cols.to_vec(17);
            let mut expect = OnlineStats::new();
            for (gi, &start) in starts.iter().enumerate() {
                let end = starts.get(gi + 1).copied().unwrap_or(97);
                let mut shard = OnlineStats::new();
                for &i in rows.iter().filter(|&&i| i >= start && i < end) {
                    for &j in &cols {
                        shard.push(m[(i, j)]);
                    }
                }
                expect.merge(&shard);
            }
            for threads in [1, 2, 3, 8] {
                let got = QueryEngine::new(&e)
                    .with_threads(threads)
                    .aggregate_all(&sel)
                    .unwrap();
                assert_eq!(got.sum, expect.sum(), "threads={threads}");
                assert_eq!(got.avg, expect.mean(), "threads={threads}");
                assert_eq!(got.count, expect.count(), "threads={threads}");
                assert_eq!(got.stddev, expect.population_std_dev(), "threads={threads}");
            }
        }
    }

    /// One time block of the exact adapter: an owned column slice that
    /// counts every reconstruction call, so tests can prove pruning.
    struct CountingBlock {
        data: Matrix,
        calls: std::sync::atomic::AtomicU64,
    }

    impl CountingBlock {
        fn touch(&self) {
            self.calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        fn calls(&self) -> u64 {
            self.calls.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    impl CompressedMatrix for CountingBlock {
        fn rows(&self) -> usize {
            self.data.rows()
        }
        fn cols(&self) -> usize {
            self.data.cols()
        }
        fn cell(&self, i: usize, j: usize) -> Result<f64> {
            self.touch();
            self.data.get(i, j)
        }
        fn row_into(&self, i: usize, out: &mut [f64]) -> Result<()> {
            self.touch();
            if out.len() != self.data.cols() {
                return Err(AtsError::dims(
                    "CountingBlock::row_into",
                    (1, out.len()),
                    (1, self.data.cols()),
                ));
            }
            out.copy_from_slice(self.data.row(i));
            Ok(())
        }
        fn storage_bytes(&self) -> usize {
            0
        }
        fn method_name(&self) -> &'static str {
            "counting-block"
        }
    }

    /// The exact adapter wearing a time-block layout: same cells as the
    /// source matrix, but partitioned into per-block column slices that
    /// the engine must route to (and prune) itself.
    struct TimeBlockedExact {
        blocks: Vec<CountingBlock>,
        starts: Vec<usize>,
        cols: usize,
    }

    impl TimeBlockedExact {
        fn split(m: &Matrix, starts: Vec<usize>) -> Self {
            let cols = m.cols();
            let blocks = starts
                .iter()
                .enumerate()
                .map(|(b, &s)| {
                    let e = starts.get(b + 1).copied().unwrap_or(cols);
                    CountingBlock {
                        data: Matrix::from_fn(m.rows(), e - s, |i, j| m[(i, s + j)]),
                        calls: std::sync::atomic::AtomicU64::new(0),
                    }
                })
                .collect();
            TimeBlockedExact {
                blocks,
                starts,
                cols,
            }
        }

        fn route(&self, j: usize) -> (usize, usize) {
            let idx = match self.starts.binary_search(&j) {
                Ok(p) => p,
                Err(p) => p - 1,
            };
            (idx, self.starts[idx])
        }
    }

    impl CompressedMatrix for TimeBlockedExact {
        fn rows(&self) -> usize {
            self.blocks[0].rows()
        }
        fn cols(&self) -> usize {
            self.cols
        }
        fn cell(&self, i: usize, j: usize) -> Result<f64> {
            if j >= self.cols {
                return Err(AtsError::oob("column", j, self.cols));
            }
            let (b, s) = self.route(j);
            self.blocks[b].cell(i, j - s)
        }
        fn storage_bytes(&self) -> usize {
            0
        }
        fn method_name(&self) -> &'static str {
            "timeblocked-exact"
        }
        fn time_block_starts(&self) -> Vec<usize> {
            self.starts.clone()
        }
        fn time_block(&self, b: usize) -> Option<&dyn CompressedMatrix> {
            self.blocks.get(b).map(|blk| blk as &dyn CompressedMatrix)
        }
    }

    #[test]
    fn timeblocked_aggregate_merges_in_block_order_exactly() {
        // The time-block path must implement precisely "group selected
        // columns by owning block, fold each block, merge in block
        // order" — reproduce that by hand and demand bit-for-bit
        // equality at every thread count.
        let m = bumpy(60, 24);
        let starts = vec![0usize, 7, 16];
        let e = TimeBlockedExact::split(&m, starts.clone());
        for sel in [
            Selection::all(),
            Selection::time_range(Axis::Range(5, 50), 3, 20),
            Selection {
                rows: Axis::set(vec![0, 9, 17, 58]),
                cols: Axis::set(vec![2, 6, 7, 15, 16, 23]),
            },
            Selection::time_range(Axis::All, 7, 16), // exactly block 1
        ] {
            let rows: Vec<usize> = sel.rows.iter(60).collect();
            let cols: Vec<usize> = sel.cols.to_vec(24);
            let mut expect = OnlineStats::new();
            for (b, &s) in starts.iter().enumerate() {
                let end = starts.get(b + 1).copied().unwrap_or(24);
                let block_cols: Vec<usize> = cols
                    .iter()
                    .copied()
                    .filter(|&j| j >= s && j < end)
                    .collect();
                if block_cols.is_empty() {
                    continue;
                }
                let mut part = OnlineStats::new();
                for &i in &rows {
                    for &j in &block_cols {
                        part.push(m[(i, j)]);
                    }
                }
                expect.merge(&part);
            }
            // Single-threaded the engine's within-block fold matches
            // the hand reduction exactly, so block-order merge must be
            // bit-for-bit; threaded runs re-associate within a block
            // and get a float tolerance instead.
            let got = QueryEngine::new(&e)
                .with_threads(1)
                .aggregate_all(&sel)
                .unwrap();
            assert_eq!(got.sum, expect.sum());
            assert_eq!(got.count, expect.count());
            assert_eq!(got.min, expect.min());
            assert_eq!(got.max, expect.max());
            assert_eq!(got.stddev, expect.population_std_dev());
            let got3 = QueryEngine::new(&e)
                .with_threads(3)
                .aggregate_all(&sel)
                .unwrap();
            assert_eq!(got3.count, expect.count());
            assert_eq!(got3.min, expect.min());
            assert_eq!(got3.max, expect.max());
            let tol = 1e-9 * expect.sum().abs().max(1.0);
            assert!((got3.sum - expect.sum()).abs() <= tol, "threads=3 sum");
        }
    }

    #[test]
    fn timeblocked_aggregate_prunes_untouched_blocks() {
        // A range confined to block 1 must leave blocks 0 and 2 with
        // zero reconstruction calls — the engine-level pruning that the
        // store-level IoStats tests pin against real disk I/O.
        let m = bumpy(40, 30);
        let e = TimeBlockedExact::split(&m, vec![0, 10, 20]);
        let sel = Selection::time_range(Axis::All, 12, 18);
        let got = QueryEngine::new(&e)
            .aggregate(&sel, AggregateFn::Sum)
            .unwrap();
        let expect: f64 = {
            let mut s = OnlineStats::new();
            for i in 0..40 {
                for j in 12..18 {
                    s.push(m[(i, j)]);
                }
            }
            s.sum()
        };
        assert_eq!(got, expect);
        assert_eq!(e.blocks[0].calls(), 0, "block 0 must stay cold");
        assert!(e.blocks[1].calls() > 0);
        assert_eq!(e.blocks[2].calls(), 0, "block 2 must stay cold");
        // A block-edge-spanning range touches exactly the two overlapped
        // blocks.
        let e2 = TimeBlockedExact::split(&m, vec![0, 10, 20]);
        let edge = Selection::time_range(Axis::All, 8, 12);
        QueryEngine::new(&e2)
            .aggregate(&edge, AggregateFn::Avg)
            .unwrap();
        assert!(e2.blocks[0].calls() > 0);
        assert!(e2.blocks[1].calls() > 0);
        assert_eq!(e2.blocks[2].calls(), 0);
    }

    #[test]
    fn timeblocked_empty_and_boundary_ranges() {
        let m = bumpy(20, 12);
        let e = TimeBlockedExact::split(&m, vec![0, 4, 8]);
        let q = QueryEngine::new(&e);
        // Empty time range: InvalidArgument, never a panic.
        let empty = Selection::time_range(Axis::All, 5, 5);
        for f in AggregateFn::ALL {
            assert!(matches!(
                q.aggregate(&empty, f),
                Err(AtsError::InvalidArgument(_))
            ));
        }
        // Single-column range.
        let one = Selection::time_range(Axis::All, 7, 8);
        let got = q.aggregate(&one, AggregateFn::Sum).unwrap();
        let expect: f64 = (0..20).map(|i| m[(i, 7)]).sum::<f64>();
        assert!((got - expect).abs() <= 1e-9 * expect.abs().max(1.0));
        // Range ending exactly on a block edge.
        let edge = Selection::time_range(Axis::All, 2, 4);
        q.aggregate(&edge, AggregateFn::Max).unwrap();
        // Range past the end: refused.
        let over = Selection::time_range(Axis::All, 8, 13);
        assert!(q.aggregate(&over, AggregateFn::Sum).is_err());
    }

    use crate::predicate::CmpOp;

    /// Brute-force `where` baseline: per-cell reconstruction and
    /// evaluation in rows-then-ascending-columns order — the order the
    /// engine documents — over an uncompressed matrix.
    fn where_exact(m: &Matrix, sel: &Selection, f: AggregateFn, pred: &Predicate) -> Result<f64> {
        let (n, mm) = m.shape();
        sel.validate(n, mm)?;
        let mut stats = OnlineStats::new();
        for i in sel.rows.iter(n) {
            for j in sel.cols.to_vec(mm) {
                let v = m[(i, j)];
                if pred.eval(v) {
                    stats.push(v);
                }
            }
        }
        if let AggregateFn::Count = f {
            return Ok(stats.count() as f64);
        }
        f.finish(&stats)
    }

    /// The exact adapter wearing a zone-map synopsis: same cells, plus
    /// a [`ShardSynopsis`] built from the data and a counter of
    /// `cells_in_row` fetches (the unit of `U` I/O the pruning saves).
    struct SynopticExact {
        data: Matrix,
        syn: ShardSynopsis,
        fetches: std::sync::atomic::AtomicU64,
    }

    impl SynopticExact {
        fn build(data: Matrix) -> Self {
            let mut b = ats_storage::SynopsisBuilder::new(data.rows(), data.cols()).unwrap();
            for i in 0..data.rows() {
                b.push_row(data.row(i)).unwrap();
            }
            let syn = b.finish().unwrap();
            SynopticExact {
                data,
                syn,
                fetches: std::sync::atomic::AtomicU64::new(0),
            }
        }

        fn fetches(&self) -> u64 {
            self.fetches.load(std::sync::atomic::Ordering::Relaxed)
        }
    }

    impl CompressedMatrix for SynopticExact {
        fn rows(&self) -> usize {
            self.data.rows()
        }
        fn cols(&self) -> usize {
            self.data.cols()
        }
        fn cell(&self, i: usize, j: usize) -> Result<f64> {
            self.data.get(i, j)
        }
        fn cells_in_row(&self, i: usize, cols: &[usize], out: &mut [f64]) -> Result<()> {
            self.fetches
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            for (&j, o) in cols.iter().zip(out.iter_mut()) {
                *o = self.data.get(i, j)?;
            }
            Ok(())
        }
        fn storage_bytes(&self) -> usize {
            0
        }
        fn method_name(&self) -> &'static str {
            "synoptic-exact"
        }
        fn shard_synopsis(&self, shard: usize) -> Option<&ShardSynopsis> {
            (shard == 0).then_some(&self.syn)
        }
    }

    /// Rows carry their index as value, so each 8-row tile band has
    /// bounds [8t, 8t+7]: a threshold mid-band makes some bands prove
    /// False, some True, one straddle — all three classifications live.
    fn banded(n: usize, m: usize) -> Matrix {
        Matrix::from_fn(n, m, |i, j| i as f64 + (j % 4) as f64 * 0.01)
    }

    #[test]
    fn where_matches_brute_force_on_plain_matrix() {
        // No synopsis anywhere: the pure fallback path, every operator
        // and aggregate, bitwise against the hand scan.
        let m = bumpy(50, 13);
        let e = ExactMatrix(m.clone());
        let q = QueryEngine::new(&e);
        let sel = Selection {
            rows: Axis::Range(3, 47),
            cols: Axis::Range(1, 12),
        };
        for op in [CmpOp::Gt, CmpOp::Ge, CmpOp::Lt, CmpOp::Le, CmpOp::Eq] {
            let pred = Predicate::new(op, 2.0).unwrap();
            for f in AggregateFn::ALL {
                match (
                    q.aggregate_where(&sel, f, &pred),
                    where_exact(&m, &sel, f, &pred),
                ) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.to_bits(), b.to_bits(), "{:?} {}", op, f.name())
                    }
                    (a, b) => assert!(
                        a.is_err() && b.is_err(),
                        "{:?} {}: engine {a:?} vs exact {b:?}",
                        op,
                        f.name()
                    ),
                }
            }
        }
    }

    #[test]
    fn where_pruned_equals_fallback_bitwise_and_skips_fetches() {
        let e = SynopticExact::build(banded(48, 20));
        let sel = Selection::all();
        let pred = Predicate::new(CmpOp::Gt, 30.0).unwrap();
        // Bands [0..8) … [24..32) hold values ≤ 31.03: bands 0-2 prove
        // False, band 3 (rows 24..32, max 31.03) straddles, bands 4-5
        // prove True.
        let baseline: Vec<f64> = AggregateFn::ALL
            .iter()
            .map(|&f| {
                QueryEngine::new(&e)
                    .with_synopsis(false)
                    .aggregate_where(&sel, f, &pred)
                    .unwrap()
            })
            .collect();
        let unpruned = e.fetches(); // 48 rows × 6 aggregates
        assert_eq!(unpruned, 48 * 6);
        for (&f, &want) in AggregateFn::ALL.iter().zip(&baseline) {
            let before = e.fetches();
            let got = QueryEngine::new(&e)
                .with_synopsis(true)
                .aggregate_where(&sel, f, &pred)
                .unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "{}", f.name());
            let spent = e.fetches() - before;
            match f {
                // count needs only the straddling band reconstructed.
                AggregateFn::Count => assert_eq!(spent, 8, "count fetches"),
                // value aggregates reconstruct True bands too, but the
                // three False bands (24 rows) still cost nothing.
                _ => assert_eq!(spent, 48 - 24, "{} fetches", f.name()),
            }
        }
        // Sanity on the actual value: count of cells > 30.
        let expect = where_exact(&e.data, &sel, AggregateFn::Count, &pred).unwrap();
        assert_eq!(baseline[2], expect);
    }

    #[test]
    fn where_zero_matches_counts_zero_and_errors_elsewhere() {
        let e = SynopticExact::build(banded(16, 8));
        let pred = Predicate::new(CmpOp::Gt, 1e6).unwrap(); // nothing matches
        let sel = Selection::all();
        for on in [true, false] {
            let q = QueryEngine::new(&e).with_synopsis(on);
            assert_eq!(
                q.aggregate_where(&sel, AggregateFn::Count, &pred).unwrap(),
                0.0
            );
            for f in [AggregateFn::Sum, AggregateFn::Min, AggregateFn::StdDev] {
                let err = q.aggregate_where(&sel, f, &pred).unwrap_err();
                assert!(matches!(err, AtsError::InvalidArgument(_)), "{err}");
                assert!(err.to_string().contains("count is defined"), "{err}");
            }
        }
        // With pruning on, the all-False store does zero fetches.
        let before = e.fetches();
        QueryEngine::new(&e)
            .with_synopsis(true)
            .aggregate_where(&sel, AggregateFn::Count, &pred)
            .unwrap();
        assert_eq!(e.fetches(), before, "all-False scan must not reconstruct");
        // An empty *selection* is still rejected, count included.
        let empty = Selection {
            rows: Axis::Range(3, 3),
            cols: Axis::All,
        };
        assert!(QueryEngine::new(&e)
            .aggregate_where(&empty, AggregateFn::Count, &pred)
            .is_err());
    }

    #[test]
    fn where_handles_nan_cells_identically_with_and_without_pruning() {
        let mut m = banded(24, 10);
        m[(20, 3)] = f64::NAN; // poisons tile (2, 0): True band degrades to Maybe
        let e = SynopticExact::build(m.clone());
        let sel = Selection::all();
        let pred = Predicate::new(CmpOp::Gt, 10.0).unwrap();
        for f in [AggregateFn::Count, AggregateFn::Sum, AggregateFn::Max] {
            let pruned = QueryEngine::new(&e)
                .with_synopsis(true)
                .aggregate_where(&sel, f, &pred)
                .unwrap();
            let fallback = QueryEngine::new(&e)
                .with_synopsis(false)
                .aggregate_where(&sel, f, &pred)
                .unwrap();
            assert_eq!(pruned.to_bits(), fallback.to_bits(), "{}", f.name());
            assert!(pruned.is_finite(), "NaN must be excluded, not aggregated");
        }
        // The NaN cell itself is never a match.
        let count = QueryEngine::new(&e)
            .aggregate_where(&sel, AggregateFn::Count, &pred)
            .unwrap();
        let expect = where_exact(&m, &sel, AggregateFn::Count, &pred).unwrap();
        assert_eq!(count, expect);
    }

    #[test]
    fn where_threaded_and_sharded_paths_agree_with_serial() {
        // Thread chunking and shard fan-out must answer what the serial
        // scan answers (bitwise for order-independent aggregates, to
        // tolerance for Welford merges), synopsis on or off.
        let m = bumpy(97, 17);
        let pred = Predicate::new(CmpOp::Ge, 0.0).unwrap();
        let plain = ExactMatrix(m.clone());
        let sharded = ShardedExact(m.clone(), vec![0, 32, 64]);
        let sel = Selection::all();
        let serial = QueryEngine::new(&plain)
            .aggregate_where(&sel, AggregateFn::Sum, &pred)
            .unwrap();
        let count = QueryEngine::new(&plain)
            .aggregate_where(&sel, AggregateFn::Count, &pred)
            .unwrap();
        for threads in [1, 3, 8] {
            for on in [true, false] {
                let qp = QueryEngine::new(&plain)
                    .with_threads(threads)
                    .with_synopsis(on);
                let qs = QueryEngine::new(&sharded)
                    .with_threads(threads)
                    .with_synopsis(on);
                for q in [&qp, &qs] {
                    let s = q.aggregate_where(&sel, AggregateFn::Sum, &pred).unwrap();
                    assert!((s - serial).abs() <= 1e-9 * serial.abs().max(1.0));
                    let c = q.aggregate_where(&sel, AggregateFn::Count, &pred).unwrap();
                    assert_eq!(c, count, "threads={threads} synopsis={on}");
                }
            }
        }
    }

    #[test]
    fn where_routes_time_blocks_and_prunes_untouched_ones() {
        let m = bumpy(40, 30);
        let e = TimeBlockedExact::split(&m, vec![0, 10, 20]);
        let sel = Selection::time_range(Axis::All, 12, 18);
        let pred = Predicate::new(CmpOp::Lt, 100.0).unwrap(); // everything matches
        let got = QueryEngine::new(&e)
            .aggregate_where(&sel, AggregateFn::Sum, &pred)
            .unwrap();
        let expect: f64 = {
            let mut s = OnlineStats::new();
            for i in 0..40 {
                for j in 12..18 {
                    s.push(m[(i, j)]);
                }
            }
            s.sum()
        };
        assert_eq!(got.to_bits(), expect.to_bits());
        assert_eq!(e.blocks[0].calls(), 0, "block 0 must stay cold");
        assert_eq!(e.blocks[2].calls(), 0, "block 2 must stay cold");
    }

    #[test]
    fn single_shard_matrix_keeps_monolithic_path() {
        // shard_starts = [0] means "one shard": the result must equal
        // the monolithic engine bit-for-bit at one thread.
        let m = bumpy(60, 8);
        let sharded = ShardedExact(m.clone(), vec![0]);
        let plain = ExactMatrix(m);
        let sel = Selection::all();
        let a = QueryEngine::new(&sharded).aggregate_all(&sel).unwrap();
        let b = QueryEngine::new(&plain).aggregate_all(&sel).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn store_level_threading_on_compressed_matrix() {
        // The threaded path also runs over a real compressed matrix
        // (Sync reconstruction), not just the exact adapter.
        let x = bumpy(120, 10);
        let c = ats_compress::SvdCompressed::compress(&x, 4, 1).unwrap();
        let sel = Selection {
            rows: Axis::Range(0, 120),
            cols: Axis::Range(0, 10),
        };
        let serial = QueryEngine::new(&c)
            .aggregate(&sel, AggregateFn::Sum)
            .unwrap();
        let par = QueryEngine::new(&c)
            .with_threads(4)
            .aggregate(&sel, AggregateFn::Sum)
            .unwrap();
        assert!((serial - par).abs() <= 1e-9 * serial.abs().max(1.0));
    }
}
