//! Seedable 64-bit mixing hashes.
//!
//! The delta hash table of SVDD (§4.2) keys outlier cells by their
//! row-major ordinal `row * M + col`; the Bloom filter in front of it needs
//! several independent hash functions of the same key. Both are served by
//! [`mix64`] / [`hash_u64`], a SplitMix64-style finalizer with excellent
//! avalanche behaviour and no allocation, plus [`hash_bytes`], an FNV-1a
//! variant strengthened with a final mix (used for file checksums).

/// SplitMix64 finalizer: a bijective mixing of a 64-bit value.
///
/// Every input bit affects every output bit (full avalanche). Because the
/// function is a bijection, distinct cell ordinals can never collide before
/// reduction to a table slot.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a 64-bit key with a seed, producing independent streams per seed.
#[inline]
pub fn hash_u64(key: u64, seed: u64) -> u64 {
    mix64(key ^ mix64(seed))
}

/// FNV-1a over a byte slice, strengthened with a final [`mix64`].
///
/// Used for file integrity checksums in `ats-storage`; not cryptographic.
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    mix64(h)
}

/// Derive `n` bloom-filter bit positions for `key` using double hashing
/// (Kirsch–Mitzenmacher): `h1 + i*h2 mod m`.
#[inline]
pub fn double_hash_positions(key: u64, n: usize, m: usize) -> impl Iterator<Item = usize> {
    let h1 = hash_u64(key, 0x5151_5151);
    let h2 = hash_u64(key, 0xA3A3_A3A3) | 1; // odd => full period for power-of-two m
    (0..n as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m as u64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
    }

    #[test]
    fn mix64_zero_is_not_zero() {
        // A common failure mode of weak mixers: fixed point at zero.
        assert_ne!(mix64(0), 0);
    }

    #[test]
    fn seeded_streams_differ() {
        let a: Vec<u64> = (0..100).map(|k| hash_u64(k, 1)).collect();
        let b: Vec<u64> = (0..100).map(|k| hash_u64(k, 2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mix64_no_collisions_small_domain() {
        // bijectivity implies no collisions; spot-check 100k inputs.
        let mut seen = HashSet::new();
        for k in 0..100_000u64 {
            assert!(seen.insert(mix64(k)), "collision at {k}");
        }
    }

    #[test]
    fn hash_bytes_sensitive_to_each_byte() {
        let base = hash_bytes(b"hello world");
        assert_ne!(base, hash_bytes(b"hello worlc"));
        assert_ne!(base, hash_bytes(b"iello world"));
        assert_ne!(base, hash_bytes(b"hello worl"));
    }

    #[test]
    fn hash_bytes_empty_ok() {
        // Empty slices hash deterministically without panicking.
        assert_eq!(hash_bytes(b""), hash_bytes(b""));
    }

    #[test]
    fn double_hash_positions_in_range() {
        for key in [0u64, 1, 999, u64::MAX] {
            for p in double_hash_positions(key, 7, 1024) {
                assert!(p < 1024);
            }
        }
    }

    #[test]
    fn double_hash_positions_count() {
        assert_eq!(double_hash_positions(12345, 5, 64).count(), 5);
        assert_eq!(double_hash_positions(12345, 0, 64).count(), 0);
    }

    #[test]
    fn avalanche_rough_check() {
        // Flipping one input bit should flip ~32 of the 64 output bits.
        let mut total = 0u32;
        let trials = 256;
        for i in 0..trials {
            let x = mix64(i) ^ 0xDEAD_BEEF; // arbitrary spread of inputs
            let flipped = x ^ (1 << (i % 64));
            total += (mix64(x) ^ mix64(flipped)).count_ones();
        }
        let avg = f64::from(total) / f64::from(u32::try_from(trials).unwrap());
        assert!((20.0..44.0).contains(&avg), "avalanche average {avg}");
    }
}
