//! Online and summary statistics.
//!
//! The paper's error metric (Def. 5.1, "RMSPE") normalizes the root sum of
//! squared reconstruction errors by the root sum of squared deviations from
//! the dataset mean — i.e. by `(N·M − adjust)^{1/2}` times the standard
//! deviation. Computing that over a dataset that does not fit in memory
//! requires a single-pass, numerically stable accumulator: Welford's
//! algorithm, provided here as [`OnlineStats`]. [`Summary`] adds min/max
//! and quantile extraction for in-memory slices (used for the median-vs-
//! mean observation under Fig. 8).

/// Welford single-pass accumulator for count / mean / variance / min / max.
///
/// Numerically stable: the classic `E[x²]−E[x]²` formulation catastrophically
/// cancels for data with large mean and small spread (exactly the shape of
/// per-customer call volumes); Welford's recurrence does not.
///
/// # Examples
///
/// ```
/// use ats_common::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Add every value of a slice.
    pub fn push_slice(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merge another accumulator into this one (Chan et al. parallel
    /// combination) — lets passes be computed per-thread then reduced.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Population variance `M2/n` (0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance `M2/(n−1)` (0 if fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sum of squared deviations from the mean, `Σ(x−x̄)²` — the
    /// denominator (squared) of the paper's RMSPE.
    pub fn sum_squared_deviations(&self) -> f64 {
        self.m2
    }

    /// Minimum observed value (`+∞` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observed value (`−∞` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Summary statistics of an in-memory sample, including quantiles.
#[derive(Debug, Clone)]
pub struct Summary {
    sorted: Vec<f64>,
    stats: OnlineStats,
}

impl Summary {
    /// Build from a sample; NaNs are dropped.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(f64::total_cmp);
        let mut stats = OnlineStats::new();
        stats.push_slice(&sorted);
        Summary { sorted, stats }
    }

    /// Number of (non-NaN) observations.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Mean of the sample.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Population standard deviation of the sample.
    pub fn std_dev(&self) -> f64 {
        self.stats.population_std_dev()
    }

    /// Linear-interpolation quantile, `q ∈ [0, 1]`. Returns 0 for an empty
    /// sample.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let w = pos - lo as f64;
            self.sorted[lo] * (1.0 - w) + self.sorted[hi] * w
        }
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Largest observation (0 for an empty sample).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Smallest observation (0 for an empty sample).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroish() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn stable_with_large_offset() {
        // 1e9 + small noise: naive E[x²]−E[x]² loses all precision here.
        let mut s = OnlineStats::new();
        for i in 0..1000 {
            s.push(1e9 + f64::from(i % 10));
        }
        let v = s.population_variance();
        assert!((v - 8.25).abs() < 1e-6, "variance {v}");
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.7 - 3.0).collect();
        let mut whole = OnlineStats::new();
        whole.push_slice(&data);

        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        a.push_slice(&data[..37]);
        b.push_slice(&data[37..]);
        a.merge(&b);

        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.m2 - whole.m2).abs() < 1e-6);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push_slice(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e.count(), 3);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_quantiles() {
        let s = Summary::from_values((1..=100).map(f64::from));
        assert_eq!(s.median(), 50.5);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert!((s.quantile(0.25) - 25.75).abs() < 1e-9);
    }

    #[test]
    fn summary_drops_nans() {
        let s = Summary::from_values(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::from_values(std::iter::empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.median(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn sum_squared_deviations_matches_direct() {
        let data = [1.0, 4.0, 9.0, 16.0, 25.0];
        let mut s = OnlineStats::new();
        s.push_slice(&data);
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let direct: f64 = data.iter().map(|x| (x - mean).powi(2)).sum();
        assert!((s.sum_squared_deviations() - direct).abs() < 1e-9);
    }
}
