//! Workspace-wide error type.
//!
//! Every fallible public API in the `adhoc-ts` workspace returns
//! [`Result<T>`], an alias for `std::result::Result<T, AtsError>`.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, AtsError>;

/// The error type shared by all `adhoc-ts` crates.
#[derive(Debug)]
pub enum AtsError {
    /// An operation received a matrix/vector whose dimensions do not match
    /// what the operation requires (e.g. multiplying a `2×3` by a `2×2`).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: String,
        /// Dimensions the caller supplied.
        got: (usize, usize),
        /// Dimensions the operation expected.
        expected: (usize, usize),
    },
    /// A row/column/cell index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must respect.
        bound: usize,
        /// What kind of index (row, column, page, ...).
        what: &'static str,
    },
    /// An iterative numerical routine failed to converge.
    NoConvergence {
        /// The routine that failed.
        routine: &'static str,
        /// How many iterations were attempted.
        iterations: usize,
    },
    /// A numerical precondition was violated (singular matrix, negative
    /// eigenvalue where none may exist, NaN in the input, ...).
    Numerical(String),
    /// The requested compression budget cannot be met (e.g. a space target
    /// smaller than one principal component).
    Budget(String),
    /// A file had an invalid header, bad magic, version mismatch, or a
    /// checksum failure.
    Corrupt(String),
    /// Invalid configuration or argument value.
    InvalidArgument(String),
    /// Wrapper around `std::io::Error` for all storage-layer failures.
    Io(std::io::Error),
    /// An internal invariant was violated (a worker thread panicked, a
    /// data structure reached a state the algorithm rules out). These are
    /// bugs, but the library surfaces them as errors rather than
    /// panicking: the serving path must stay up on any input.
    Internal(String),
}

impl fmt::Display for AtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtsError::DimensionMismatch {
                context,
                got,
                expected,
            } => write!(
                f,
                "dimension mismatch in {context}: got {}x{}, expected {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            AtsError::IndexOutOfBounds { index, bound, what } => {
                write!(f, "{what} index {index} out of bounds (must be < {bound})")
            }
            AtsError::NoConvergence {
                routine,
                iterations,
            } => write!(
                f,
                "{routine} failed to converge after {iterations} iterations"
            ),
            AtsError::Numerical(msg) => write!(f, "numerical error: {msg}"),
            AtsError::Budget(msg) => write!(f, "space budget error: {msg}"),
            AtsError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            AtsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            AtsError::Io(e) => write!(f, "I/O error: {e}"),
            AtsError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for AtsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AtsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AtsError {
    fn from(e: std::io::Error) -> Self {
        AtsError::Io(e)
    }
}

impl AtsError {
    /// Construct a [`AtsError::DimensionMismatch`] with less ceremony.
    pub fn dims(context: impl Into<String>, got: (usize, usize), expected: (usize, usize)) -> Self {
        AtsError::DimensionMismatch {
            context: context.into(),
            got,
            expected,
        }
    }

    /// Construct an [`AtsError::IndexOutOfBounds`].
    pub fn oob(what: &'static str, index: usize, bound: usize) -> Self {
        AtsError::IndexOutOfBounds { index, bound, what }
    }

    /// Construct an [`AtsError::Internal`] — an invariant the code relies
    /// on was violated, reported as an error instead of a panic.
    pub fn internal(msg: impl Into<String>) -> Self {
        AtsError::Internal(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = AtsError::dims("matmul", (2, 3), (3, 2));
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("3x2"));
    }

    #[test]
    fn display_oob() {
        let e = AtsError::oob("row", 10, 5);
        assert_eq!(e.to_string(), "row index 10 out of bounds (must be < 5)");
    }

    #[test]
    fn io_error_roundtrip_source() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: AtsError = ioe.into();
        assert!(matches!(e, AtsError::Io(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn display_no_convergence() {
        let e = AtsError::NoConvergence {
            routine: "ql_implicit",
            iterations: 30,
        };
        assert!(e.to_string().contains("ql_implicit"));
        assert!(e.to_string().contains("30"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtsError>();
    }
}
