//! Little-endian byte codecs for the on-disk formats.
//!
//! `ats-storage` lays matrices out as raw little-endian IEEE-754 doubles;
//! the SVDD delta file stores `(row, col, delta)` triplets; headers carry
//! fixed-width integers. These helpers centralize the encoding so every
//! file format in the workspace agrees on byte order and width, and so the
//! hot row-decode path (`read_f64_slice_into`) is a single tight loop.

use crate::error::{AtsError, Result};

/// Append a `u32` little-endian.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` little-endian.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` little-endian.
#[inline]
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a whole `f64` slice little-endian.
pub fn put_f64_slice(buf: &mut Vec<u8>, vs: &[f64]) {
    buf.reserve(vs.len() * 8);
    for &v in vs {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Read a `u32` at `offset`, or error if out of range.
#[inline]
pub fn get_u32(buf: &[u8], offset: usize) -> Result<u32> {
    let end = offset
        .checked_add(4)
        .ok_or_else(|| AtsError::Corrupt("u32 offset overflow".into()))?;
    let bytes = buf
        .get(offset..end)
        .ok_or_else(|| AtsError::Corrupt(format!("u32 read at {offset} past end {}", buf.len())))?;
    let arr: [u8; 4] = bytes
        .try_into()
        .map_err(|_| AtsError::Corrupt("u32 slice width".into()))?;
    Ok(u32::from_le_bytes(arr))
}

/// Read a `u64` at `offset`, or error if out of range.
#[inline]
pub fn get_u64(buf: &[u8], offset: usize) -> Result<u64> {
    let end = offset
        .checked_add(8)
        .ok_or_else(|| AtsError::Corrupt("u64 offset overflow".into()))?;
    let bytes = buf
        .get(offset..end)
        .ok_or_else(|| AtsError::Corrupt(format!("u64 read at {offset} past end {}", buf.len())))?;
    let arr: [u8; 8] = bytes
        .try_into()
        .map_err(|_| AtsError::Corrupt("u64 slice width".into()))?;
    Ok(u64::from_le_bytes(arr))
}

/// Read an `f64` at `offset`, or error if out of range.
#[inline]
pub fn get_f64(buf: &[u8], offset: usize) -> Result<f64> {
    Ok(f64::from_bits(get_u64(buf, offset)?))
}

/// Decode `out.len()` doubles starting at `offset`. Errors if the buffer
/// is too short.
pub fn read_f64_slice_into(buf: &[u8], offset: usize, out: &mut [f64]) -> Result<()> {
    let need = out.len() * 8;
    let end = offset
        .checked_add(need)
        .ok_or_else(|| AtsError::Corrupt("f64 slice offset overflow".into()))?;
    let src = buf.get(offset..end).ok_or_else(|| {
        AtsError::Corrupt(format!(
            "f64 slice read of {need} bytes at {offset} past end {}",
            buf.len()
        ))
    })?;
    for (dst, chunk) in out.iter_mut().zip(src.chunks_exact(8)) {
        let arr: [u8; 8] = chunk
            .try_into()
            .map_err(|_| AtsError::Corrupt("f64 chunk width".into()))?;
        *dst = f64::from_le_bytes(arr);
    }
    Ok(())
}

/// Encode an `f64` slice to a fresh byte vector.
pub fn f64s_to_bytes(vs: &[f64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(vs.len() * 8);
    put_f64_slice(&mut buf, vs);
    buf
}

/// Decode a byte buffer (whose length must be a multiple of 8) into doubles.
pub fn bytes_to_f64s(buf: &[u8]) -> Result<Vec<f64>> {
    if !buf.len().is_multiple_of(8) {
        return Err(AtsError::Corrupt(format!(
            "byte length {} is not a multiple of 8",
            buf.len()
        )));
    }
    let mut out = vec![0.0f64; buf.len() / 8];
    read_f64_slice_into(buf, 0, &mut out)?;
    Ok(out)
}

/// LEB128-style variable-length encoding of a `u64` (used by the LZ
/// container and delta files where most rows/cols are small).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        // ats-lint: allow(lossy-cast) — masked to the low 7 bits, always fits in u8
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decode a varint at `offset`; returns `(value, bytes_consumed)`.
pub fn get_varint(buf: &[u8], offset: usize) -> Result<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().skip(offset).enumerate() {
        if shift >= 64 {
            return Err(AtsError::Corrupt("varint longer than 10 bytes".into()));
        }
        v |= u64::from(byte & 0x7F)
            .checked_shl(shift)
            .ok_or_else(|| AtsError::Corrupt("varint shift overflow".into()))?;
        if byte & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(AtsError::Corrupt("varint truncated".into()))
}

/// Convert a disk/CLI-originated `u64` to `usize`, erroring instead of
/// truncating when the value does not fit (32-bit targets, or a corrupt
/// header claiming an absurd count). `what` names the field for the
/// error message.
#[inline]
pub fn usize_from_u64(v: u64, what: &'static str) -> Result<usize> {
    usize::try_from(v).map_err(|_| AtsError::Corrupt(format!("{what} {v} does not fit in usize")))
}

/// Widen a `usize` to `u64` for on-disk headers and offsets. Lossless on
/// every supported target (`usize` is at most 64 bits).
#[inline]
pub fn u64_from_usize(v: usize) -> u64 {
    // ats-lint: allow(lossy-cast) — widening usize→u64 is lossless on all supported targets
    v as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        assert_eq!(get_u32(&buf, 0).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn u64_roundtrip() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX - 7);
        assert_eq!(get_u64(&buf, 0).unwrap(), u64::MAX - 7);
    }

    #[test]
    fn f64_roundtrip_preserves_bits() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE, 1e300] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            assert_eq!(get_f64(&buf, 0).unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn slice_roundtrip() {
        let vs: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.25 - 3.0).collect();
        let bytes = f64s_to_bytes(&vs);
        assert_eq!(bytes.len(), 800);
        assert_eq!(bytes_to_f64s(&bytes).unwrap(), vs);
    }

    #[test]
    fn slice_into_with_offset() {
        let mut buf = vec![0xAA; 3]; // 3 bytes of junk prefix
        put_f64_slice(&mut buf, &[1.0, 2.0]);
        let mut out = [0.0; 2];
        read_f64_slice_into(&buf, 3, &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0]);
    }

    #[test]
    fn short_reads_error() {
        let buf = vec![0u8; 7];
        assert!(get_u64(&buf, 0).is_err());
        assert!(get_u32(&buf, 5).is_err());
        let mut out = [0.0; 1];
        assert!(read_f64_slice_into(&buf, 0, &mut out).is_err());
        assert!(bytes_to_f64s(&buf).is_err());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let (got, used) = get_varint(&buf, 0).unwrap();
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_truncated_errors() {
        let buf = vec![0x80, 0x80]; // continuation bits but no terminator
        assert!(get_varint(&buf, 0).is_err());
        assert!(get_varint(&[], 0).is_err());
    }

    #[test]
    fn varint_sizes() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_varint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        put_varint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn offset_overflow_is_error_not_panic() {
        let buf = vec![0u8; 16];
        assert!(get_u32(&buf, usize::MAX - 1).is_err());
        assert!(get_u64(&buf, usize::MAX - 2).is_err());
    }

    #[test]
    fn checked_width_conversions() {
        assert_eq!(usize_from_u64(42, "count").unwrap(), 42);
        assert_eq!(u64_from_usize(42), 42);
        #[cfg(target_pointer_width = "32")]
        assert!(usize_from_u64(u64::MAX, "count").is_err());
    }
}
