//! # ats-common
//!
//! Shared substrate for the `adhoc-ts` workspace — the reproduction of
//! Korn, Jagadish & Faloutsos, *"Efficiently Supporting Ad Hoc Queries in
//! Large Datasets of Time Sequences"* (SIGMOD 1997).
//!
//! This crate contains the small, dependency-light building blocks that the
//! rest of the workspace leans on:
//!
//! - [`error`] — the workspace-wide error type [`AtsError`];
//! - [`hash`] — a seedable 64-bit mixing hash (used by the Bloom filter and
//!   the delta hash table);
//! - [`bloom`] — the Bloom filter of §4.2 / §6.2 of the paper;
//! - [`topk`] — a bounded "keep the γ largest" tracker, the priority queue
//!   of the 3-pass SVDD algorithm (Fig. 5);
//! - [`stats`] — Welford online mean/variance and summary statistics used
//!   by the error metrics (RMSPE normalizes by the dataset's standard
//!   deviation, Def. 5.1);
//! - [`codec`] — little-endian byte codecs for the on-disk formats;
//! - [`testutil`] — unique, self-cleaning temp directories for tests that
//!   exercise the on-disk paths.

pub mod bloom;
pub mod codec;
pub mod error;
pub mod hash;
pub mod stats;
pub mod testutil;
pub mod topk;

pub use bloom::BloomFilter;
pub use error::{AtsError, Result};
pub use stats::{OnlineStats, Summary};
pub use testutil::TestDir;
pub use topk::TopK;
