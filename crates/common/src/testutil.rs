//! Test support: unique, self-cleaning temp directories.
//!
//! Several crates in the workspace exercise the out-of-core code paths by
//! writing matrix files under `std::env::temp_dir()`. Keying those paths
//! by `process::id()` alone makes reruns collide (same pid namespace in
//! containers) and leaks files on panic. [`TestDir`] gives every test its
//! own directory — pid + monotonic counter + a caller prefix — and removes
//! it on drop, including the unwind path of a failed assertion.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// A uniquely named temp directory that is deleted when dropped.
///
/// # Examples
///
/// ```
/// use ats_common::TestDir;
/// let dir = TestDir::new("doctest");
/// let file = dir.path().join("data.bin");
/// std::fs::write(&file, b"hello").unwrap();
/// assert!(file.exists());
/// let kept = dir.path().to_path_buf();
/// drop(dir);
/// assert!(!kept.exists());
/// ```
#[derive(Debug)]
pub struct TestDir {
    path: PathBuf,
}

impl TestDir {
    /// Create a fresh directory `<tmp>/<prefix>-<pid>-<seq>`.
    ///
    /// Panics if the directory cannot be created (tests want a loud
    /// failure, not a silent fallback).
    pub fn new(prefix: &str) -> Self {
        let seq = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("{prefix}-{}-{seq}", std::process::id()));
        // A leftover from a crashed run with the same pid+seq is stale by
        // construction; clear it so the test starts from nothing.
        if path.exists() {
            let _ = std::fs::remove_dir_all(&path);
        }
        // ats-lint: allow(no-panic) — test-only helper; tests want a loud failure, not a fallback
        std::fs::create_dir_all(&path).unwrap_or_else(|e| panic!("TestDir::new({prefix}): {e}"));
        TestDir { path }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Convenience: a file path inside the directory.
    pub fn file(&self, name: impl AsRef<Path>) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_per_instance() {
        let a = TestDir::new("ats-testdir");
        let b = TestDir::new("ats-testdir");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        assert!(b.path().is_dir());
    }

    #[test]
    fn cleans_up_on_drop() {
        let dir = TestDir::new("ats-testdir-drop");
        let keep = dir.path().to_path_buf();
        std::fs::write(dir.file("f.txt"), b"x").unwrap();
        std::fs::create_dir_all(dir.path().join("nested/deep")).unwrap();
        drop(dir);
        assert!(!keep.exists());
    }
}
