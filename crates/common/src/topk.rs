//! Bounded "keep the γ largest" tracker.
//!
//! The 3-pass SVDD algorithm (Fig. 5 of the paper) maintains, during its
//! second pass, **one priority queue per candidate cutoff `k`**, each
//! holding the `γ_k` cells with the largest reconstruction error seen so
//! far. [`TopK`] is that queue: a min-heap of bounded capacity, so that the
//! smallest retained item is evicted when a larger one arrives. All
//! operations are `O(log γ)`; a full pass over `N·M` cells costs
//! `O(N·M·log γ)` per queue.

/// A bounded tracker that retains the `capacity` items with the largest
/// `f64` priority.
///
/// Each entry may carry a `u64` *rank* that breaks priority ties: among
/// equal priorities the item with the **smaller** rank wins. Feeding
/// globally unique ranks (e.g. the cell ordinal of a matrix scan) makes
/// the retained set a function of the offered set alone — independent of
/// arrival order, and therefore of how a scan is partitioned across
/// shards or threads ([`TopK::merge`] relies on this). The rankless
/// [`TopK::offer`] uses the lowest possible rank standing (`u64::MAX`),
/// which preserves the historical "ties at the boundary are rejected"
/// behavior. Items are any `T`; the priority is carried alongside. NaN
/// priorities are rejected by [`TopK::offer`] (returns `false`) so the
/// heap order is always total.
///
/// # Examples
///
/// ```
/// use ats_common::TopK;
/// let mut t = TopK::new(2);
/// t.offer(1.0, "a");
/// t.offer(3.0, "b");
/// t.offer(2.0, "c");
/// let mut kept: Vec<_> = t.into_sorted_vec().into_iter().map(|(_, v)| v).collect();
/// kept.sort();
/// assert_eq!(kept, vec!["b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK<T> {
    /// Min-heap on `(priority, rank)`: `heap[0]` is the *lowest-standing*
    /// retained item (smallest priority, largest rank among equals).
    heap: Vec<(f64, u64, T)>,
    capacity: usize,
}

/// Whether standing `a = (priority, rank)` is strictly below standing `b`:
/// smaller priority, or equal priority with the larger rank.
fn below(a: (f64, u64), b: (f64, u64)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 > b.1)
}

impl<T> TopK<T> {
    /// Create a tracker keeping at most `capacity` items.
    /// A zero capacity is legal and retains nothing.
    pub fn new(capacity: usize) -> Self {
        TopK {
            heap: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
        }
    }

    /// Offer an item with the given priority and no tie-break rank
    /// (equivalent to [`TopK::offer_ranked`] with rank `u64::MAX`, so
    /// boundary ties are rejected as they always were). Returns `true`
    /// if the item was retained (possibly evicting the current minimum).
    pub fn offer(&mut self, priority: f64, item: T) -> bool {
        self.offer_ranked(priority, u64::MAX, item)
    }

    /// Offer an item with a priority and a tie-break rank (smaller rank
    /// beats equal priority). Returns `true` if it was retained.
    pub fn offer_ranked(&mut self, priority: f64, rank: u64, item: T) -> bool {
        if self.capacity == 0 || priority.is_nan() {
            return false;
        }
        if self.heap.len() < self.capacity {
            self.heap.push((priority, rank, item));
            self.sift_up(self.heap.len() - 1);
            return true;
        }
        let root = (self.heap[0].0, self.heap[0].1);
        if below(root, (priority, rank)) {
            self.heap[0] = (priority, rank, item);
            self.sift_down(0);
            true
        } else {
            false
        }
    }

    /// The smallest priority currently retained, or `None` if empty.
    pub fn threshold(&self) -> Option<f64> {
        self.heap.first().map(|&(p, _, _)| p)
    }

    /// Whether an unranked offer with this priority would be retained.
    pub fn would_accept(&self, priority: f64) -> bool {
        self.would_accept_ranked(priority, u64::MAX)
    }

    /// Whether an offer with this priority and rank would be retained.
    pub fn would_accept_ranked(&self, priority: f64, rank: u64) -> bool {
        if self.capacity == 0 || priority.is_nan() {
            return false;
        }
        if self.heap.len() < self.capacity {
            return true;
        }
        let root = (self.heap[0].0, self.heap[0].1);
        below(root, (priority, rank))
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate retained `(priority, item)` pairs in heap (arbitrary) order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &T)> {
        self.heap.iter().map(|(p, _, item)| (*p, item))
    }

    /// Consume, returning items sorted by *descending* priority
    /// (ascending rank among ties, so the order — like the retained set —
    /// is a function of what was offered, not of arrival order).
    pub fn into_sorted_vec(mut self) -> Vec<(f64, T)> {
        self.heap.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        self.heap
            .into_iter()
            .map(|(p, _, item)| (p, item))
            .collect()
    }

    /// Sum of all retained priorities (used to compute how much error mass
    /// the retained outliers account for). Summed in descending
    /// `(priority, rank)` order, so the result is bit-deterministic for a
    /// given retained set no matter how the heap happens to be laid out —
    /// a sharded merge and a single scan agree exactly.
    pub fn priority_sum(&self) -> f64 {
        let mut keys: Vec<(f64, u64)> = self.heap.iter().map(|&(p, r, _)| (p, r)).collect();
        keys.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        keys.iter().map(|&(p, _)| p).sum()
    }

    /// Absorb another tracker: after the call, `self` retains the
    /// `self.capacity` largest items of the union of both trackers.
    ///
    /// This is the reduction step for sharded scans: feeding disjoint row
    /// ranges into per-worker queues and merging the shards retains the
    /// same item set as one queue fed every row, because any item in the
    /// global top-γ is necessarily in the local top-γ of its shard. With
    /// globally unique ranks the guarantee is exact even under priority
    /// ties (the `(priority, rank)` order is total); rankless entries
    /// fall back to arbitrary tie-breaks, as with `offer`.
    pub fn merge(&mut self, other: TopK<T>) {
        for (p, rank, item) in other.heap {
            self.offer_ranked(p, rank, item);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            let child_key = (self.heap[i].0, self.heap[i].1);
            let parent_key = (self.heap[parent].0, self.heap[parent].1);
            if below(child_key, parent_key) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut lowest = i;
            let key = |h: &[(f64, u64, T)], idx: usize| (h[idx].0, h[idx].1);
            if l < n && below(key(&self.heap, l), key(&self.heap, lowest)) {
                lowest = l;
            }
            if r < n && below(key(&self.heap, r), key(&self.heap, lowest)) {
                lowest = r;
            }
            if lowest == i {
                break;
            }
            self.heap.swap(i, lowest);
            i = lowest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_largest() {
        let mut t = TopK::new(3);
        for (p, v) in [(5.0, 5), (1.0, 1), (9.0, 9), (3.0, 3), (7.0, 7)] {
            t.offer(p, v);
        }
        let kept: Vec<i32> = t.into_sorted_vec().into_iter().map(|(_, v)| v).collect();
        assert_eq!(kept, vec![9, 7, 5]);
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut t = TopK::new(0);
        assert!(!t.offer(100.0, ()));
        assert!(t.is_empty());
        assert_eq!(t.threshold(), None);
    }

    #[test]
    fn rejects_nan() {
        let mut t = TopK::new(2);
        assert!(!t.offer(f64::NAN, 1));
        assert!(t.is_empty());
        assert!(!t.would_accept(f64::NAN));
        assert!(!t.would_accept_ranked(f64::NAN, 0));
    }

    #[test]
    fn threshold_is_min_retained() {
        let mut t = TopK::new(2);
        t.offer(4.0, ());
        t.offer(8.0, ());
        assert_eq!(t.threshold(), Some(4.0));
        t.offer(6.0, ());
        assert_eq!(t.threshold(), Some(6.0));
    }

    #[test]
    fn would_accept_consistent_with_offer() {
        let mut t = TopK::new(2);
        t.offer(4.0, ());
        t.offer(8.0, ());
        assert!(t.would_accept(5.0));
        assert!(!t.would_accept(4.0)); // strict: equal priority not accepted
        assert!(!t.would_accept(3.0));
    }

    #[test]
    fn ranked_ties_prefer_smaller_rank() {
        let mut t = TopK::new(2);
        assert!(t.offer_ranked(1.0, 10, "r10"));
        assert!(t.offer_ranked(1.0, 30, "r30"));
        // Equal priority, smaller rank: evicts the rank-30 entry.
        assert!(t.would_accept_ranked(1.0, 20));
        assert!(t.offer_ranked(1.0, 20, "r20"));
        // Equal priority, larger rank than anything retained: rejected.
        assert!(!t.would_accept_ranked(1.0, 40));
        assert!(!t.offer_ranked(1.0, 40, "r40"));
        let kept: Vec<&str> = t.into_sorted_vec().into_iter().map(|(_, v)| v).collect();
        assert_eq!(kept, vec!["r10", "r20"]);
    }

    #[test]
    fn ranked_retained_set_is_arrival_order_independent() {
        // Many tied priorities: any arrival order and any sharding of the
        // offers must retain exactly the same (priority, rank) set.
        let items: Vec<(f64, u64)> = (0..40u64)
            .map(|r| (f64::from(u32::from(r % 4 == 0)), r))
            .collect();
        let canonical = |offers: &[(f64, u64)]| -> Vec<(f64, u64)> {
            let mut t: TopK<u64> = TopK::new(7);
            for &(p, r) in offers {
                t.offer_ranked(p, r, r);
            }
            let mut kept: Vec<(f64, u64)> = t.into_sorted_vec().into_iter().collect();
            kept.sort_by(|a, b| a.partial_cmp(b).unwrap());
            kept
        };
        let forward = canonical(&items);
        let mut reversed = items.clone();
        reversed.reverse();
        assert_eq!(canonical(&reversed), forward);
        // Shard + merge agrees too.
        let mut merged: TopK<u64> = TopK::new(7);
        for chunk in items.chunks(9) {
            let mut local: TopK<u64> = TopK::new(7);
            for &(p, r) in chunk {
                local.offer_ranked(p, r, r);
            }
            merged.merge(local);
        }
        let mut kept: Vec<(f64, u64)> = merged.into_sorted_vec().into_iter().collect();
        kept.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(kept, forward);
    }

    #[test]
    fn sorted_output_descending() {
        let mut t = TopK::new(100);
        for i in 0..100 {
            t.offer(f64::from((i * 37) % 100), i);
        }
        let v = t.into_sorted_vec();
        for w in v.windows(2) {
            assert!(w[0].0 >= w[1].0);
        }
    }

    #[test]
    fn priority_sum_tracks_retained() {
        let mut t = TopK::new(3);
        for p in [1.0, 2.0, 3.0, 4.0] {
            t.offer(p, ());
        }
        // retains {2, 3, 4}
        assert!((t.priority_sum() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn priority_sum_is_layout_independent() {
        // The same retained set reached via different arrival orders must
        // sum to the same bits (the sum is taken in canonical order, not
        // heap order).
        let ps = [1.0e16, 1.0, -1.0e16, 3.5, 2.25, 7.75, 0.125];
        let mut a: TopK<u64> = TopK::new(4);
        let mut b: TopK<u64> = TopK::new(4);
        for (r, &p) in ps.iter().enumerate() {
            a.offer_ranked(p, r as u64, r as u64);
        }
        for (r, &p) in ps.iter().enumerate().rev() {
            b.offer_ranked(p, r as u64, r as u64);
        }
        assert_eq!(a.priority_sum().to_bits(), b.priority_sum().to_bits());
    }

    #[test]
    fn merge_of_shards_equals_single_queue() {
        let priorities: Vec<f64> = (0..200).map(|i| f64::from((i * 131) % 997)).collect();
        let mut single = TopK::new(17);
        for (i, &p) in priorities.iter().enumerate() {
            single.offer(p, i);
        }
        let mut merged = TopK::new(17);
        for chunk in priorities.chunks(23) {
            let mut shard = TopK::new(17);
            for (i, &p) in chunk.iter().enumerate() {
                shard.offer(p, i);
            }
            merged.merge(shard);
        }
        let a: Vec<f64> = single
            .into_sorted_vec()
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        let b: Vec<f64> = merged
            .into_sorted_vec()
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_with_empty_and_into_empty() {
        let mut a = TopK::new(3);
        a.offer(1.0, "x");
        a.merge(TopK::new(3));
        assert_eq!(a.len(), 1);

        let mut b: TopK<&str> = TopK::new(3);
        let mut c = TopK::new(3);
        c.offer(2.0, "y");
        b.merge(c);
        assert_eq!(b.len(), 1);
        assert_eq!(b.threshold(), Some(2.0));
    }

    #[test]
    fn merge_respects_receiver_capacity() {
        let mut small = TopK::new(2);
        let mut big = TopK::new(10);
        for i in 0..10 {
            big.offer(f64::from(i), i);
        }
        small.merge(big);
        assert_eq!(small.len(), 2);
        let kept: Vec<i32> = small
            .into_sorted_vec()
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        assert_eq!(kept, vec![9, 8]);
    }

    #[test]
    fn merge_into_zero_capacity_retains_nothing() {
        let mut z: TopK<i32> = TopK::new(0);
        let mut other = TopK::new(3);
        other.offer(5.0, 5);
        z.merge(other);
        assert!(z.is_empty());
    }

    proptest::proptest! {
        #[test]
        fn merge_is_order_insensitive(
            ps in proptest::collection::vec(0.0f64..1000.0, 1..120),
            cap in 1usize..20,
        ) {
            let mut fwd = TopK::new(cap);
            let mut rev = TopK::new(cap);
            for (i, &p) in ps.iter().enumerate() {
                fwd.offer_ranked(p, i as u64, i);
            }
            for (i, &p) in ps.iter().enumerate().rev() {
                rev.offer_ranked(p, i as u64, i);
            }
            let a: Vec<(f64, usize)> = fwd.into_sorted_vec();
            let b: Vec<(f64, usize)> = rev.into_sorted_vec();
            proptest::prop_assert_eq!(a, b);
        }
    }
}
