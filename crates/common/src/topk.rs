//! Bounded "keep the γ largest" tracker.
//!
//! The 3-pass SVDD algorithm (Fig. 5 of the paper) maintains, during its
//! second pass, **one priority queue per candidate cutoff `k`**, each
//! holding the `γ_k` cells with the largest reconstruction error seen so
//! far. [`TopK`] is that queue: a min-heap of bounded capacity, so that the
//! smallest retained item is evicted when a larger one arrives. All
//! operations are `O(log γ)`; a full pass over `N·M` cells costs
//! `O(N·M·log γ)` per queue.

/// A bounded tracker that retains the `capacity` items with the largest
/// `f64` priority.
///
/// Ties are broken arbitrarily. Items are any `T`; the priority is carried
/// alongside. NaN priorities are rejected by [`TopK::offer`] (returns
/// `false`) so the heap order is always total.
///
/// # Examples
///
/// ```
/// use ats_common::TopK;
/// let mut t = TopK::new(2);
/// t.offer(1.0, "a");
/// t.offer(3.0, "b");
/// t.offer(2.0, "c");
/// let mut kept: Vec<_> = t.into_sorted_vec().into_iter().map(|(_, v)| v).collect();
/// kept.sort();
/// assert_eq!(kept, vec!["b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK<T> {
    /// Min-heap on priority: `heap[0]` is the *smallest* retained item.
    heap: Vec<(f64, T)>,
    capacity: usize,
}

impl<T> TopK<T> {
    /// Create a tracker keeping at most `capacity` items.
    /// A zero capacity is legal and retains nothing.
    pub fn new(capacity: usize) -> Self {
        TopK {
            heap: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
        }
    }

    /// Offer an item with the given priority. Returns `true` if it was
    /// retained (possibly evicting the current minimum).
    pub fn offer(&mut self, priority: f64, item: T) -> bool {
        if self.capacity == 0 || priority.is_nan() {
            return false;
        }
        if self.heap.len() < self.capacity {
            self.heap.push((priority, item));
            self.sift_up(self.heap.len() - 1);
            true
        } else if priority > self.heap[0].0 {
            self.heap[0] = (priority, item);
            self.sift_down(0);
            true
        } else {
            false
        }
    }

    /// The smallest priority currently retained, or `None` if empty.
    pub fn threshold(&self) -> Option<f64> {
        self.heap.first().map(|&(p, _)| p)
    }

    /// Whether an offer with this priority would be retained.
    pub fn would_accept(&self, priority: f64) -> bool {
        self.capacity > 0
            && !priority.is_nan()
            && (self.heap.len() < self.capacity || priority > self.heap[0].0)
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate retained `(priority, item)` pairs in heap (arbitrary) order.
    pub fn iter(&self) -> impl Iterator<Item = &(f64, T)> {
        self.heap.iter()
    }

    /// Consume, returning items sorted by *descending* priority.
    pub fn into_sorted_vec(mut self) -> Vec<(f64, T)> {
        self.heap
            .sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        self.heap
    }

    /// Sum of all retained priorities (used to compute how much error mass
    /// the retained outliers account for).
    pub fn priority_sum(&self) -> f64 {
        self.heap.iter().map(|&(p, _)| p).sum()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].0 < self.heap[parent].0 {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.heap[l].0 < self.heap[smallest].0 {
                smallest = l;
            }
            if r < n && self.heap[r].0 < self.heap[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_largest() {
        let mut t = TopK::new(3);
        for (p, v) in [(5.0, 5), (1.0, 1), (9.0, 9), (3.0, 3), (7.0, 7)] {
            t.offer(p, v);
        }
        let kept: Vec<i32> = t.into_sorted_vec().into_iter().map(|(_, v)| v).collect();
        assert_eq!(kept, vec![9, 7, 5]);
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut t = TopK::new(0);
        assert!(!t.offer(100.0, ()));
        assert!(t.is_empty());
        assert_eq!(t.threshold(), None);
    }

    #[test]
    fn rejects_nan() {
        let mut t = TopK::new(2);
        assert!(!t.offer(f64::NAN, 1));
        assert!(t.is_empty());
        assert!(!t.would_accept(f64::NAN));
    }

    #[test]
    fn threshold_is_min_retained() {
        let mut t = TopK::new(2);
        t.offer(4.0, ());
        t.offer(8.0, ());
        assert_eq!(t.threshold(), Some(4.0));
        t.offer(6.0, ());
        assert_eq!(t.threshold(), Some(6.0));
    }

    #[test]
    fn would_accept_consistent_with_offer() {
        let mut t = TopK::new(2);
        t.offer(4.0, ());
        t.offer(8.0, ());
        assert!(t.would_accept(5.0));
        assert!(!t.would_accept(4.0)); // strict: equal priority not accepted
        assert!(!t.would_accept(3.0));
    }

    #[test]
    fn sorted_output_descending() {
        let mut t = TopK::new(100);
        for i in 0..100 {
            t.offer(f64::from((i * 37) % 100), i);
        }
        let v = t.into_sorted_vec();
        for w in v.windows(2) {
            assert!(w[0].0 >= w[1].0);
        }
    }

    #[test]
    fn heap_invariant_under_random_stream() {
        // Compare against a sort-based oracle for many random offers.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut t = TopK::new(16);
        let mut all: Vec<f64> = Vec::new();
        for _ in 0..2_000 {
            let p: f64 = rng.gen_range(0.0..1000.0);
            t.offer(p, ());
            all.push(p);
        }
        all.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let expect: Vec<f64> = all.into_iter().take(16).collect();
        let mut got: Vec<f64> = t.iter().map(|&(p, _)| p).collect();
        got.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(got, expect);
    }

    #[test]
    fn priority_sum_tracks_retained() {
        let mut t = TopK::new(2);
        t.offer(1.0, ());
        t.offer(2.0, ());
        t.offer(3.0, ()); // evicts 1.0
        assert!((t.priority_sum() - 5.0).abs() < 1e-12);
    }
}
