//! Bounded "keep the γ largest" tracker.
//!
//! The 3-pass SVDD algorithm (Fig. 5 of the paper) maintains, during its
//! second pass, **one priority queue per candidate cutoff `k`**, each
//! holding the `γ_k` cells with the largest reconstruction error seen so
//! far. [`TopK`] is that queue: a min-heap of bounded capacity, so that the
//! smallest retained item is evicted when a larger one arrives. All
//! operations are `O(log γ)`; a full pass over `N·M` cells costs
//! `O(N·M·log γ)` per queue.

/// A bounded tracker that retains the `capacity` items with the largest
/// `f64` priority.
///
/// Ties are broken arbitrarily. Items are any `T`; the priority is carried
/// alongside. NaN priorities are rejected by [`TopK::offer`] (returns
/// `false`) so the heap order is always total.
///
/// # Examples
///
/// ```
/// use ats_common::TopK;
/// let mut t = TopK::new(2);
/// t.offer(1.0, "a");
/// t.offer(3.0, "b");
/// t.offer(2.0, "c");
/// let mut kept: Vec<_> = t.into_sorted_vec().into_iter().map(|(_, v)| v).collect();
/// kept.sort();
/// assert_eq!(kept, vec!["b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct TopK<T> {
    /// Min-heap on priority: `heap[0]` is the *smallest* retained item.
    heap: Vec<(f64, T)>,
    capacity: usize,
}

impl<T> TopK<T> {
    /// Create a tracker keeping at most `capacity` items.
    /// A zero capacity is legal and retains nothing.
    pub fn new(capacity: usize) -> Self {
        TopK {
            heap: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
        }
    }

    /// Offer an item with the given priority. Returns `true` if it was
    /// retained (possibly evicting the current minimum).
    pub fn offer(&mut self, priority: f64, item: T) -> bool {
        if self.capacity == 0 || priority.is_nan() {
            return false;
        }
        if self.heap.len() < self.capacity {
            self.heap.push((priority, item));
            self.sift_up(self.heap.len() - 1);
            true
        } else if priority > self.heap[0].0 {
            self.heap[0] = (priority, item);
            self.sift_down(0);
            true
        } else {
            false
        }
    }

    /// The smallest priority currently retained, or `None` if empty.
    pub fn threshold(&self) -> Option<f64> {
        self.heap.first().map(|&(p, _)| p)
    }

    /// Whether an offer with this priority would be retained.
    pub fn would_accept(&self, priority: f64) -> bool {
        self.capacity > 0
            && !priority.is_nan()
            && (self.heap.len() < self.capacity || priority > self.heap[0].0)
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterate retained `(priority, item)` pairs in heap (arbitrary) order.
    pub fn iter(&self) -> impl Iterator<Item = &(f64, T)> {
        self.heap.iter()
    }

    /// Consume, returning items sorted by *descending* priority.
    pub fn into_sorted_vec(mut self) -> Vec<(f64, T)> {
        self.heap
            .sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        self.heap
    }

    /// Sum of all retained priorities (used to compute how much error mass
    /// the retained outliers account for).
    pub fn priority_sum(&self) -> f64 {
        self.heap.iter().map(|&(p, _)| p).sum()
    }

    /// Absorb another tracker: after the call, `self` retains the
    /// `self.capacity` largest items of the union of both trackers.
    ///
    /// This is the reduction step for sharded scans: feeding disjoint row
    /// ranges into per-worker queues and merging the shards retains the
    /// same item set as one queue fed every row, because any item in the
    /// global top-γ is necessarily in the local top-γ of its shard.
    /// (Ties at the boundary are broken arbitrarily, as with `offer`.)
    pub fn merge(&mut self, other: TopK<T>) {
        for (p, item) in other.heap {
            self.offer(p, item);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].0 < self.heap[parent].0 {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.heap[l].0 < self.heap[smallest].0 {
                smallest = l;
            }
            if r < n && self.heap[r].0 < self.heap[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_largest() {
        let mut t = TopK::new(3);
        for (p, v) in [(5.0, 5), (1.0, 1), (9.0, 9), (3.0, 3), (7.0, 7)] {
            t.offer(p, v);
        }
        let kept: Vec<i32> = t.into_sorted_vec().into_iter().map(|(_, v)| v).collect();
        assert_eq!(kept, vec![9, 7, 5]);
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut t = TopK::new(0);
        assert!(!t.offer(100.0, ()));
        assert!(t.is_empty());
        assert_eq!(t.threshold(), None);
    }

    #[test]
    fn rejects_nan() {
        let mut t = TopK::new(2);
        assert!(!t.offer(f64::NAN, 1));
        assert!(t.is_empty());
        assert!(!t.would_accept(f64::NAN));
    }

    #[test]
    fn threshold_is_min_retained() {
        let mut t = TopK::new(2);
        t.offer(4.0, ());
        t.offer(8.0, ());
        assert_eq!(t.threshold(), Some(4.0));
        t.offer(6.0, ());
        assert_eq!(t.threshold(), Some(6.0));
    }

    #[test]
    fn would_accept_consistent_with_offer() {
        let mut t = TopK::new(2);
        t.offer(4.0, ());
        t.offer(8.0, ());
        assert!(t.would_accept(5.0));
        assert!(!t.would_accept(4.0)); // strict: equal priority not accepted
        assert!(!t.would_accept(3.0));
    }

    #[test]
    fn sorted_output_descending() {
        let mut t = TopK::new(100);
        for i in 0..100 {
            t.offer(f64::from((i * 37) % 100), i);
        }
        let v = t.into_sorted_vec();
        for w in v.windows(2) {
            assert!(w[0].0 >= w[1].0);
        }
    }

    #[test]
    fn heap_invariant_under_random_stream() {
        // Compare against a sort-based oracle for many random offers.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut t = TopK::new(16);
        let mut all: Vec<f64> = Vec::new();
        for _ in 0..2_000 {
            let p: f64 = rng.gen_range(0.0..1000.0);
            t.offer(p, ());
            all.push(p);
        }
        all.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let expect: Vec<f64> = all.into_iter().take(16).collect();
        let mut got: Vec<f64> = t.iter().map(|&(p, _)| p).collect();
        got.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(got, expect);
    }

    #[test]
    fn priority_sum_tracks_retained() {
        let mut t = TopK::new(2);
        t.offer(1.0, ());
        t.offer(2.0, ());
        t.offer(3.0, ()); // evicts 1.0
        assert!((t.priority_sum() - 5.0).abs() < 1e-12);
    }

    /// Retained priorities in descending order (for order-insensitive
    /// comparison of two queues).
    fn sorted_priorities<T>(t: &TopK<T>) -> Vec<f64> {
        let mut ps: Vec<f64> = t.iter().map(|&(p, _)| p).collect();
        ps.sort_by(|a, b| b.partial_cmp(a).unwrap());
        ps
    }

    #[test]
    fn merge_of_shards_equals_single_queue() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let all: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0..1000.0)).collect();

        let mut whole = TopK::new(20);
        for (i, &p) in all.iter().enumerate() {
            whole.offer(p, i);
        }

        let mut merged = TopK::new(20);
        for shard in all.chunks(123) {
            let base = merged.len(); // arbitrary; items identified by priority
            let mut q = TopK::new(20);
            for (i, &p) in shard.iter().enumerate() {
                q.offer(p, base + i);
            }
            merged.merge(q);
        }

        assert_eq!(sorted_priorities(&merged), sorted_priorities(&whole));
    }

    #[test]
    fn merge_with_empty_and_into_empty() {
        let mut a = TopK::new(3);
        a.offer(1.0, 'a');
        a.offer(2.0, 'b');
        a.merge(TopK::new(3));
        assert_eq!(a.len(), 2);

        let mut empty = TopK::new(3);
        empty.merge(a);
        assert_eq!(sorted_priorities(&empty), vec![2.0, 1.0]);
    }

    #[test]
    fn merge_respects_receiver_capacity() {
        let mut small = TopK::new(2);
        small.offer(5.0, ());
        let mut big = TopK::new(10);
        for i in 0..10 {
            big.offer(f64::from(i), ());
        }
        small.merge(big);
        assert_eq!(small.len(), 2);
        assert_eq!(sorted_priorities(&small), vec![9.0, 8.0]);
    }

    #[test]
    fn merge_into_zero_capacity_retains_nothing() {
        let mut zero: TopK<i32> = TopK::new(0);
        let mut other = TopK::new(4);
        other.offer(1.0, 7);
        zero.merge(other);
        assert!(zero.is_empty());
    }

    mod merge_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Merging per-shard queues retains exactly the priorities a
            /// single queue fed the whole stream would retain, for any
            /// stream, any capacity, and any shard boundary.
            #[test]
            fn sharded_merge_equals_union_feed(
                xs in proptest::collection::vec(0.0f64..1e6, 0..200),
                cap in 0usize..32,
                split in 0usize..200,
            ) {
                let split = split.min(xs.len());
                let mut whole = TopK::new(cap);
                for (i, &p) in xs.iter().enumerate() {
                    whole.offer(p, i);
                }

                let mut left = TopK::new(cap);
                for (i, &p) in xs[..split].iter().enumerate() {
                    left.offer(p, i);
                }
                let mut right = TopK::new(cap);
                for (i, &p) in xs[split..].iter().enumerate() {
                    right.offer(p, split + i);
                }
                left.merge(right);

                prop_assert_eq!(sorted_priorities(&left), sorted_priorities(&whole));
                prop_assert!(
                    (left.priority_sum() - whole.priority_sum()).abs()
                        <= 1e-9 * whole.priority_sum().max(1.0)
                );
            }

            /// Merge order never changes the retained priority multiset.
            #[test]
            fn merge_is_order_insensitive(
                xs in proptest::collection::vec(0.0f64..1e6, 0..120),
                ys in proptest::collection::vec(0.0f64..1e6, 0..120),
                cap in 1usize..24,
            ) {
                let feed = |vals: &[f64]| {
                    let mut q = TopK::new(cap);
                    for (i, &p) in vals.iter().enumerate() {
                        q.offer(p, i);
                    }
                    q
                };
                let mut ab = feed(&xs);
                ab.merge(feed(&ys));
                let mut ba = feed(&ys);
                ba.merge(feed(&xs));
                prop_assert_eq!(sorted_priorities(&ab), sorted_priorities(&ba));
            }
        }
    }
}
