//! Bloom filter.
//!
//! §4.2 of the paper suggests a main-memory Bloom filter in front of the
//! SVDD delta hash table, "which would predict the majority of
//! non-outliers, and thus save several probes into the hash table", and
//! §6.2 suggests the same structure to flag all-zero customers.
//!
//! This is a standard partitioned-by-double-hashing Bloom filter with a
//! power-of-two bit array, sized from a target false-positive rate.

use crate::hash::double_hash_positions;

/// A fixed-size Bloom filter over `u64` keys.
///
/// # Examples
///
/// ```
/// use ats_common::BloomFilter;
/// let mut bf = BloomFilter::with_capacity(1_000, 0.01);
/// bf.insert(42);
/// assert!(bf.contains(42));
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Number of addressable bits; always a power of two.
    nbits: usize,
    /// Number of hash functions.
    k: usize,
    inserted: usize,
}

impl BloomFilter {
    /// Create a filter sized for `expected_items` with roughly
    /// `target_fp_rate` false positives (clamped to `[1e-6, 0.5]`).
    ///
    /// Uses the standard sizing `m = -n ln p / (ln 2)^2` rounded up to a
    /// power of two, and `k = (m/n) ln 2` hash functions.
    pub fn with_capacity(expected_items: usize, target_fp_rate: f64) -> Self {
        let n = expected_items.max(1) as f64;
        let p = target_fp_rate.clamp(1e-6, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let m = (-n * p.ln() / (ln2 * ln2)).ceil().max(64.0);
        let nbits = (m as usize).next_power_of_two();
        let k = ((nbits as f64 / n) * ln2).round().clamp(1.0, 16.0) as usize;
        BloomFilter {
            bits: vec![0u64; nbits / 64],
            nbits,
            k,
            inserted: 0,
        }
    }

    /// Create a filter with an explicit number of bits (rounded up to a
    /// power of two, minimum 64) and hash functions.
    pub fn with_bits(nbits: usize, k: usize) -> Self {
        let nbits = nbits.max(64).next_power_of_two();
        BloomFilter {
            bits: vec![0u64; nbits / 64],
            nbits,
            k: k.clamp(1, 16),
            inserted: 0,
        }
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        for pos in double_hash_positions(key, self.k, self.nbits) {
            self.bits[pos / 64] |= 1u64 << (pos % 64);
        }
        self.inserted += 1;
    }

    /// Query a key. `false` is definitive; `true` may be a false positive.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        double_hash_positions(key, self.k, self.nbits)
            .all(|pos| self.bits[pos / 64] & (1u64 << (pos % 64)) != 0)
    }

    /// Number of keys inserted so far (double-inserts counted twice).
    pub fn len(&self) -> usize {
        self.inserted
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Size of the bit array in bits.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> usize {
        self.k
    }

    /// Bytes of memory consumed by the bit array.
    pub fn storage_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Estimated false-positive rate given the current fill, using
    /// `(1 - e^{-kn/m})^k`.
    pub fn estimated_fp_rate(&self) -> f64 {
        let kn = (self.k * self.inserted) as f64;
        let m = self.nbits as f64;
        (1.0 - (-kn / m).exp()).powi(self.k as i32)
    }

    /// Fraction of bits set — a direct saturation measure.
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        f64::from(set) / self.nbits as f64
    }

    /// Clear all bits.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::with_capacity(10_000, 0.01);
        for key in (0..10_000u64).map(|i| i * 7 + 3) {
            bf.insert(key);
        }
        for key in (0..10_000u64).map(|i| i * 7 + 3) {
            assert!(bf.contains(key), "false negative for {key}");
        }
    }

    #[test]
    fn fp_rate_near_target() {
        let mut bf = BloomFilter::with_capacity(10_000, 0.01);
        for key in 0..10_000u64 {
            bf.insert(key);
        }
        // Probe 100k keys guaranteed absent.
        let fps = (1_000_000..1_100_000u64)
            .filter(|&k| bf.contains(k))
            .count();
        let rate = fps as f64 / 100_000.0;
        assert!(rate < 0.05, "observed fp rate {rate}");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bf = BloomFilter::with_capacity(100, 0.01);
        assert!(bf.is_empty());
        assert!((0..1000u64).all(|k| !bf.contains(k)));
    }

    #[test]
    fn clear_resets() {
        let mut bf = BloomFilter::with_capacity(100, 0.01);
        bf.insert(5);
        assert!(bf.contains(5));
        bf.clear();
        assert!(!bf.contains(5));
        assert!(bf.is_empty());
        assert_eq!(bf.fill_ratio(), 0.0);
    }

    #[test]
    fn sizing_is_power_of_two() {
        for n in [1usize, 10, 1000, 123_456] {
            let bf = BloomFilter::with_capacity(n, 0.01);
            assert!(bf.nbits().is_power_of_two());
            assert!(bf.num_hashes() >= 1 && bf.num_hashes() <= 16);
        }
    }

    #[test]
    fn with_bits_respects_minimum() {
        let bf = BloomFilter::with_bits(1, 0);
        assert_eq!(bf.nbits(), 64);
        assert_eq!(bf.num_hashes(), 1);
    }

    #[test]
    fn estimated_fp_tracks_fill() {
        let mut bf = BloomFilter::with_capacity(1000, 0.01);
        let before = bf.estimated_fp_rate();
        for k in 0..1000 {
            bf.insert(k);
        }
        let after = bf.estimated_fp_rate();
        assert!(before < after);
        assert!(after < 0.05);
    }

    #[test]
    fn storage_bytes_matches_bits() {
        let bf = BloomFilter::with_bits(1 << 20, 7);
        assert_eq!(bf.storage_bytes(), (1 << 20) / 8);
    }
}
